"""Proof chains for the constraint implication engine.

Every verdict of :mod:`repro.analyzer.implication` carries a *minimal
proof chain*: the ordered list of facts — structural inclusions of
the binary schema and the implying constraints themselves — from
which the verdict follows.  The chain doubles as an unsat-core-style
witness: re-checking a proof means replaying exactly its premises,
nothing else, which is what the harness's kill-shot test does
dynamically (no surgical violation of an implied rule can satisfy
all of its premises).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ProofStep:
    """One inference step.

    ``statement`` is the human-readable fact used (an inclusion, an
    interval bound, a disjointness); ``premise`` names the constraint
    the fact comes from, or is ``None`` for facts that hold by the
    structure of the schema (a role's population is included in its
    player's, a sublink equals its subtype, ...).
    """

    statement: str
    premise: str | None = None

    def render(self) -> str:
        by = "schema structure" if self.premise is None else (
            f"constraint {self.premise!r}"
        )
        return f"{self.statement} [by {by}]"


@dataclass(frozen=True)
class Proof:
    """A conclusion with the ordered steps that establish it."""

    conclusion: str
    steps: tuple[ProofStep, ...] = ()

    @property
    def premises(self) -> tuple[str, ...]:
        """The implying constraint names, deduplicated in step order.

        Structural steps contribute no premise: a proof whose only
        steps are structural has an empty premise tuple and holds in
        every schema with these elements.
        """
        seen: list[str] = []
        for step in self.steps:
            if step.premise is not None and step.premise not in seen:
                seen.append(step.premise)
        return tuple(seen)

    def extended(self, conclusion: str, *steps: ProofStep) -> "Proof":
        """A new proof reusing this one's chain plus ``steps``."""
        return Proof(conclusion=conclusion, steps=self.steps + steps)

    def render(self, indent: str = "  ") -> str:
        """The multi-line engineer-facing rendering."""
        lines = [self.conclusion]
        lines.extend(
            f"{indent}{i}. {step.render()}"
            for i, step in enumerate(self.steps, start=1)
        )
        return "\n".join(lines)

    def render_inline(self) -> str:
        """A single-line rendering for lint messages and reports."""
        chain = "; ".join(step.render() for step in self.steps)
        return f"{self.conclusion} (proof: {chain})" if chain else (
            self.conclusion
        )
