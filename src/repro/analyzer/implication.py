"""The constraint implication & satisfiability engine.

RIDL-A's consistency function (:mod:`repro.analyzer.consistency`)
decides *whether* the set-algebraic constraints force populations
empty; this module decides *why*, and goes further: a saturation pass
over the full constraint vocabulary produces typed verdicts

* ``IMPLIED`` — a declared constraint already follows from the rest
  of the schema (subset/equality paths through the population-
  inclusion preorder, uniqueness from a ``FrequencyConstraint`` with
  ``maximum <= 1``, frequency bounds subsumed by tighter bounds or by
  uniqueness, value domains containing another value domain);
* ``CONTRADICTION`` — the constraint set admits no valid non-empty
  state (disjoint frequency intervals on one role, uniqueness against
  ``minimum > 1``, disjoint value domains on one lexical type, an
  object type forced empty by exclusion + totality);
* ``FORCED_EMPTY`` — a role or sublink that can never be populated
  (the constraint machinery over it is dead weight).

Every verdict carries a :class:`~repro.analyzer.proofs.Proof`: the
minimal chain of structural facts and implying constraints it follows
from, reconstructable as an unsat-core-style witness.  Consumers:
the ``IMP4xx`` lint family renders the chains, the executor prunes
checker queries for proven-implied rules, the workload generators
fail fast on contradictions, and the advisor reports implied counts
per candidate design.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass
from enum import Enum

from repro.analyzer.cache import memoized_on_schema_version
from repro.analyzer.consistency import (
    Node,
    _item_node,
    _render_node,
    _role_node,
    _type_node,
)
from repro.analyzer.proofs import Proof, ProofStep
from repro.brm.constraints import (
    EqualityConstraint,
    FrequencyConstraint,
    SubsetConstraint,
    TotalUnionConstraint,
    UniquenessConstraint,
    ValueConstraint,
)
from repro.brm.facts import RoleId
from repro.brm.schema import BinarySchema
from repro.errors import PopulationError
from repro.observability.tracer import span as _obs_span


class VerdictKind(Enum):
    """The three verdict types of the saturation pass."""

    IMPLIED = "implied"
    CONTRADICTION = "contradiction"
    FORCED_EMPTY = "forced-empty"


@dataclass(frozen=True)
class Verdict:
    """One proven fact about the schema's constraint set.

    ``subject`` is the constraint name for ``IMPLIED``, the object
    type / ``fact.role`` / sublink name for emptiness verdicts, and
    the conflicting site for ``CONTRADICTION``.  ``category`` is the
    fine-grained finding class the lint rules dispatch on.
    """

    kind: VerdictKind
    category: str
    subject: str
    proof: Proof

    def sort_key(self) -> tuple[str, str, str, str]:
        return (
            self.kind.value,
            self.category,
            self.subject,
            self.proof.conclusion,
        )


#: ``category`` values, by verdict kind (the lint family's dispatch).
IMPLIED_CATEGORIES = (
    "subset", "equality", "uniqueness", "frequency", "value",
)
CONTRADICTION_CATEGORIES = (
    "frequency-conflict", "value-conflict", "empty-type",
)
FORCED_EMPTY_CATEGORIES = ("empty-role", "empty-sublink")


@dataclass(frozen=True)
class ImplicationResult:
    """Everything the saturation pass proved, in deterministic order."""

    schema_name: str
    verdicts: tuple[Verdict, ...]

    def of_kind(self, kind: VerdictKind) -> tuple[Verdict, ...]:
        return tuple(v for v in self.verdicts if v.kind is kind)

    @property
    def implied(self) -> tuple[Verdict, ...]:
        """Constraints that follow from the rest of the schema."""
        return self.of_kind(VerdictKind.IMPLIED)

    @property
    def contradictions(self) -> tuple[Verdict, ...]:
        """Verdicts that make the constraint set unsatisfiable."""
        return self.of_kind(VerdictKind.CONTRADICTION)

    @property
    def forced_empty(self) -> tuple[Verdict, ...]:
        """Roles/sublinks that can never be populated."""
        return self.of_kind(VerdictKind.FORCED_EMPTY)

    @property
    def is_satisfiable(self) -> bool:
        """True when no contradiction was proven."""
        return not self.contradictions

    def implied_for(self, constraint_name: str) -> Verdict | None:
        """The ``IMPLIED`` verdict on a constraint, if one was proven."""
        for verdict in self.implied:
            if verdict.subject == constraint_name:
                return verdict
        return None


# ----------------------------------------------------------------------
# The labeled population-inclusion graph
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class _Edge:
    """One inclusion ``source <= target`` with its justification."""

    target: Node
    statement: str
    premise: str | None  # constraint name; None for structural facts

    def step(self) -> ProofStep:
        return ProofStep(self.statement, self.premise)


def _inc(sub: Node, sup: Node, why: str) -> str:
    return f"pop({_render_node(sub)}) <= pop({_render_node(sup)}): {why}"


class _LabeledGraph:
    """The inclusion preorder with per-edge origins.

    Unlike the condensed :class:`~repro.analyzer.consistency.\
SubsetGraph` (bitmask reachability, no provenance), every edge here
    remembers *which* constraint or structural fact justifies it, so
    path searches reconstruct proof chains and can exclude one
    constraint's own edges (the implication test: does the inclusion
    still hold without the constraint under test?).
    """

    def __init__(self, schema: BinarySchema) -> None:
        self.schema = schema
        self.edges: dict[Node, list[_Edge]] = {}
        # empties[y] = [(x, statement, premise)]: empty(y) empties x.
        self.empties: dict[Node, list[tuple[Node, str, str | None]]] = {}
        self._lower_cache: dict[Node, dict[Node, tuple[ProofStep, ...]]] = {}
        self._build()

    def _add_edge(
        self, sub: Node, sup: Node, statement: str, premise: str | None
    ) -> None:
        self.edges.setdefault(sub, []).append(_Edge(sup, statement, premise))
        # Inclusion implies downward emptiness propagation.
        self.empties.setdefault(sup, []).append((sub, statement, premise))

    def _build(self) -> None:
        schema = self.schema
        for fact in schema.fact_types:
            first, second = fact.role_ids
            for role_id, player in (
                (first, fact.first.player),
                (second, fact.second.player),
            ):
                node = _role_node(role_id)
                self._add_edge(
                    node,
                    _type_node(player),
                    _inc(node, _type_node(player),
                         "a role's population is included in its player's"),
                    None,
                )
            both = (
                f"one empty role of fact type {fact.name!r} empties the "
                "other (every fact instance populates both roles)"
            )
            self.empties.setdefault(_role_node(first), []).append(
                (_role_node(second), both, None)
            )
            self.empties.setdefault(_role_node(second), []).append(
                (_role_node(first), both, None)
            )
        for sublink in schema.sublinks:
            sub_type = _type_node(sublink.subtype)
            super_type = _type_node(sublink.supertype)
            link = ("sublink", sublink.name)
            self._add_edge(
                sub_type, super_type,
                _inc(sub_type, super_type,
                     f"subtype inclusion via sublink {sublink.name!r}"),
                None,
            )
            equal = "a sublink's population equals its subtype's"
            self._add_edge(link, sub_type, _inc(link, sub_type, equal), None)
            self._add_edge(sub_type, link, _inc(sub_type, link, equal), None)
        for constraint in schema.constraints:
            if isinstance(constraint, SubsetConstraint):
                sub = _item_node(constraint.subset)
                sup = _item_node(constraint.superset)
                self._add_edge(
                    sub, sup,
                    _inc(sub, sup, "declared subset"),
                    constraint.name,
                )
            elif isinstance(constraint, EqualityConstraint):
                nodes = [_item_node(item) for item in constraint.items]
                for left, right in itertools.combinations(nodes, 2):
                    why = "declared equal"
                    self._add_edge(
                        left, right, _inc(left, right, why), constraint.name
                    )
                    self._add_edge(
                        right, left, _inc(right, left, why), constraint.name
                    )
            elif isinstance(constraint, TotalUnionConstraint):
                if len(constraint.items) == 1:
                    type_node = _type_node(constraint.object_type)
                    item = _item_node(constraint.items[0])
                    self._add_edge(
                        type_node, item,
                        _inc(type_node, item,
                             "total role: every instance participates"),
                        constraint.name,
                    )

    def find_path(
        self, start: Node, goal: Node, *, exclude: str | None = None
    ) -> tuple[ProofStep, ...] | None:
        """A shortest inclusion chain ``start <= ... <= goal``.

        Edges justified *only* by the ``exclude`` constraint are
        unusable — the implication test must not assume the constraint
        under test.  Returns the proof steps, or ``None``.
        """
        if start == goal:
            return ()
        parent: dict[Node, tuple[Node, _Edge] | None] = {start: None}
        queue: deque[Node] = deque((start,))
        while queue:
            node = queue.popleft()
            for edge in self.edges.get(node, ()):
                if exclude is not None and edge.premise == exclude:
                    continue
                if edge.target in parent:
                    continue
                parent[edge.target] = (node, edge)
                if edge.target == goal:
                    steps: list[ProofStep] = []
                    cursor: Node = goal
                    while True:
                        entry = parent[cursor]
                        if entry is None:
                            break
                        previous, used = entry
                        steps.append(used.step())
                        cursor = previous
                    return tuple(reversed(steps))
                queue.append(edge.target)
        return None

    def lower_bound_paths(
        self, node: Node
    ) -> dict[Node, tuple[ProofStep, ...]]:
        """Every ``x`` with ``pop(x) <= pop(node)``, with its chain.

        Reverse BFS over the inclusion edges; the node itself is a
        lower bound with an empty chain.  Cached per node (the
        exclusion seeding probes the same items repeatedly).
        """
        cached = self._lower_cache.get(node)
        if cached is not None:
            return cached
        into: dict[Node, list[tuple[Node, _Edge]]] = {}
        for source, edges in self.edges.items():
            for edge in edges:
                into.setdefault(edge.target, []).append((source, edge))
        paths: dict[Node, tuple[ProofStep, ...]] = {node: ()}
        queue: deque[Node] = deque((node,))
        while queue:
            current = queue.popleft()
            for source, edge in into.get(current, ()):
                if source in paths:
                    continue
                paths[source] = (edge.step(),) + paths[current]
                queue.append(source)
        self._lower_cache[node] = paths
        return paths


def _dedupe(steps) -> tuple[ProofStep, ...]:
    """Steps deduplicated preserving first occurrence."""
    seen: dict[ProofStep, None] = {}
    for step in steps:
        seen.setdefault(step)
    return tuple(seen)


def _role_subject(role_id: RoleId) -> str:
    return f"{role_id.fact}.{role_id.role}"


def _node_subject(node: Node) -> str:
    if node[0] == "role":
        return f"{node[1]}.{node[2]}"
    return node[1]


def _effective_interval(
    constraint: FrequencyConstraint,
) -> tuple[int, int | None] | None:
    """The play-count interval over *participating* instances.

    Clipped to ``>= 1`` (an instance that plays at all plays at least
    once); ``None`` when the bound admits no participation at all —
    the ``maximum == 0`` "never plays" form.
    """
    low = max(constraint.minimum, 1)
    if constraint.maximum is not None and constraint.maximum < low:
        return None
    return (low, constraint.maximum)


def _interval_text(constraint: FrequencyConstraint) -> str:
    upper = "N" if constraint.maximum is None else str(constraint.maximum)
    return f"[{constraint.minimum}..{upper}]"


# ----------------------------------------------------------------------
# The saturation pass
# ----------------------------------------------------------------------


@memoized_on_schema_version()
def check_implications(schema: BinarySchema) -> ImplicationResult:
    """Prove implication, contradiction and forced-emptiness verdicts.

    Memoized on the schema version stamp — consumers (lint, executor
    pruning, generator guards, advisor) share one saturation run per
    schema state.
    """
    with _obs_span("analyzer.implication", schema=schema.name):
        return _saturate(schema)


def _saturate(schema: BinarySchema) -> ImplicationResult:
    graph = _LabeledGraph(schema)
    verdicts: list[Verdict] = []

    freq_by_role: dict[RoleId, list[FrequencyConstraint]] = {}
    unique_by_role: dict[RoleId, UniquenessConstraint] = {}
    values_by_type: dict[str, list[ValueConstraint]] = {}
    for constraint in schema.constraints:
        if isinstance(constraint, FrequencyConstraint):
            freq_by_role.setdefault(constraint.role, []).append(constraint)
        elif isinstance(constraint, UniquenessConstraint):
            if constraint.is_simple:
                unique_by_role.setdefault(constraint.roles[0], constraint)
        elif isinstance(constraint, ValueConstraint):
            values_by_type.setdefault(
                constraint.object_type, []
            ).append(constraint)

    verdicts.extend(
        _implied_verdicts(
            schema, graph, freq_by_role, unique_by_role, values_by_type
        )
    )

    empty: dict[Node, Proof] = {}
    worklist: list[Node] = []

    def seed(node: Node, proof: Proof) -> None:
        if node not in empty:
            empty[node] = proof
            worklist.append(node)

    verdicts.extend(
        _frequency_conflicts(freq_by_role, unique_by_role, seed)
    )
    verdicts.extend(_value_conflicts(values_by_type, seed))
    _exclusion_seeds(schema, graph, seed)
    _propagate_emptiness(schema, graph, empty, worklist)

    for node, proof in sorted(empty.items(), key=lambda kv: repr(kv[0])):
        if node[0] == "type":
            verdicts.append(
                Verdict(
                    VerdictKind.CONTRADICTION, "empty-type",
                    node[1], proof,
                )
            )
        elif node[0] == "role":
            verdicts.append(
                Verdict(
                    VerdictKind.FORCED_EMPTY, "empty-role",
                    _node_subject(node), proof,
                )
            )
        else:
            verdicts.append(
                Verdict(
                    VerdictKind.FORCED_EMPTY, "empty-sublink",
                    node[1], proof,
                )
            )

    return ImplicationResult(
        schema_name=schema.name,
        verdicts=tuple(sorted(verdicts, key=Verdict.sort_key)),
    )


def _implied_verdicts(
    schema, graph, freq_by_role, unique_by_role, values_by_type
):
    """IMPLIED verdicts, one pass over the declared constraints."""
    for constraint in schema.constraints:
        if isinstance(constraint, SubsetConstraint):
            sub = _item_node(constraint.subset)
            sup = _item_node(constraint.superset)
            steps = graph.find_path(sub, sup, exclude=constraint.name)
            if steps is not None:
                yield Verdict(
                    VerdictKind.IMPLIED, "subset", constraint.name,
                    Proof(
                        f"subset constraint {constraint.name!r} "
                        f"({_render_node(sub)} in {_render_node(sup)}) is "
                        "implied by the rest of the schema",
                        _dedupe(steps),
                    ),
                )
        elif isinstance(constraint, EqualityConstraint):
            nodes = [_item_node(item) for item in constraint.items]
            collected: list[ProofStep] = []
            complete = True
            # A cycle through every item proves pairwise equality.
            for left, right in zip(nodes, nodes[1:] + nodes[:1]):
                steps = graph.find_path(left, right, exclude=constraint.name)
                if steps is None:
                    complete = False
                    break
                collected.extend(steps)
            if complete:
                yield Verdict(
                    VerdictKind.IMPLIED, "equality", constraint.name,
                    Proof(
                        f"equality constraint {constraint.name!r} is "
                        "implied: its items form an inclusion cycle "
                        "without it",
                        _dedupe(collected),
                    ),
                )
        elif isinstance(constraint, UniquenessConstraint):
            if not constraint.is_simple:
                continue
            role_id = constraint.roles[0]
            for frequency in freq_by_role.get(role_id, ()):
                if frequency.maximum is not None and frequency.maximum <= 1:
                    yield Verdict(
                        VerdictKind.IMPLIED, "uniqueness", constraint.name,
                        Proof(
                            f"uniqueness constraint {constraint.name!r} on "
                            f"role {_role_subject(role_id)} is implied",
                            (
                                ProofStep(
                                    "each participating instance plays "
                                    f"role {_role_subject(role_id)} at most "
                                    f"{frequency.maximum} time(s) "
                                    f"({_interval_text(frequency)})",
                                    frequency.name,
                                ),
                            ),
                        ),
                    )
                    break
        elif isinstance(constraint, FrequencyConstraint):
            verdict = _implied_frequency(
                constraint, freq_by_role, unique_by_role
            )
            if verdict is not None:
                yield verdict
        elif isinstance(constraint, ValueConstraint):
            domain = set(constraint.values)
            for other in values_by_type.get(constraint.object_type, ()):
                if other.name == constraint.name:
                    continue
                if set(other.values) <= domain:
                    yield Verdict(
                        VerdictKind.IMPLIED, "value", constraint.name,
                        Proof(
                            f"value constraint {constraint.name!r} on "
                            f"{constraint.object_type!r} is implied",
                            (
                                ProofStep(
                                    f"{other.name!r} already restricts "
                                    f"{constraint.object_type!r} to a "
                                    "subset of these values",
                                    other.name,
                                ),
                            ),
                        ),
                    )
                    break


def _implied_frequency(constraint, freq_by_role, unique_by_role):
    role_id = constraint.role
    subject = _role_subject(role_id)
    if constraint.minimum <= 1 and constraint.maximum is None:
        return Verdict(
            VerdictKind.IMPLIED, "frequency", constraint.name,
            Proof(
                f"frequency constraint {constraint.name!r} "
                f"({_interval_text(constraint)} on role {subject}) is "
                "vacuous",
                (
                    ProofStep(
                        "every participating instance plays the role at "
                        "least once by definition, and no upper bound is "
                        "declared",
                    ),
                ),
            ),
        )
    for other in freq_by_role.get(role_id, ()):
        if other.name == constraint.name:
            continue
        tighter_low = other.minimum >= constraint.minimum
        tighter_high = constraint.maximum is None or (
            other.maximum is not None
            and other.maximum <= constraint.maximum
        )
        if tighter_low and tighter_high:
            return Verdict(
                VerdictKind.IMPLIED, "frequency", constraint.name,
                Proof(
                    f"frequency constraint {constraint.name!r} "
                    f"({_interval_text(constraint)} on role {subject}) is "
                    "implied by a tighter bound",
                    (
                        ProofStep(
                            f"{other.name!r} bounds the same role to "
                            f"{_interval_text(other)}, inside "
                            f"{_interval_text(constraint)}",
                            other.name,
                        ),
                    ),
                ),
            )
    unique = unique_by_role.get(role_id)
    if (
        unique is not None
        and constraint.minimum <= 1
        and constraint.maximum is not None
        and constraint.maximum >= 1
    ):
        return Verdict(
            VerdictKind.IMPLIED, "frequency", constraint.name,
            Proof(
                f"frequency constraint {constraint.name!r} "
                f"({_interval_text(constraint)} on role {subject}) is "
                "implied by uniqueness",
                (
                    ProofStep(
                        f"{unique.name!r} makes each instance play role "
                        f"{subject} at most once",
                        unique.name,
                    ),
                ),
            ),
        )
    return None


def _frequency_conflicts(freq_by_role, unique_by_role, seed):
    """Disjoint frequency intervals and uniqueness-vs-minimum clashes.

    Each conflict is a ``CONTRADICTION`` (no instance can play the
    role at all) and seeds the role's forced emptiness; the lone
    ``maximum == 0`` "never plays" bound only seeds emptiness — it is
    a legal way to retire a role, not a modeling clash.
    """
    for role_id in sorted(freq_by_role, key=str):
        constraints = freq_by_role[role_id]
        subject = _role_subject(role_id)
        node = _role_node(role_id)
        live = []
        for constraint in constraints:
            if _effective_interval(constraint) is None:
                seed(
                    node,
                    Proof(
                        f"pop(role {subject}) is forced empty: the role "
                        "is never played",
                        (
                            ProofStep(
                                f"{constraint.name!r} bounds the role to "
                                f"{_interval_text(constraint)} — no "
                                "instance may play it",
                                constraint.name,
                            ),
                        ),
                    ),
                )
            else:
                live.append(constraint)
        for first, second in itertools.combinations(live, 2):
            low_a, high_a = _effective_interval(first)
            low_b, high_b = _effective_interval(second)
            low = max(low_a, low_b)
            high = high_a if high_b is None else (
                high_b if high_a is None else min(high_a, high_b)
            )
            if high is not None and low > high:
                proof = Proof(
                    f"frequency constraints on role {subject} admit no "
                    "common play count",
                    (
                        ProofStep(
                            f"{first.name!r} requires "
                            f"{_interval_text(first)} plays",
                            first.name,
                        ),
                        ProofStep(
                            f"{second.name!r} requires "
                            f"{_interval_text(second)} plays",
                            second.name,
                        ),
                    ),
                )
                yield Verdict(
                    VerdictKind.CONTRADICTION, "frequency-conflict",
                    subject, proof,
                )
                seed(
                    node,
                    proof.extended(
                        f"pop(role {subject}) is forced empty: no play "
                        "count satisfies both bounds",
                    ),
                )
        unique = unique_by_role.get(role_id)
        if unique is None:
            continue
        for constraint in live:
            if constraint.minimum > 1:
                proof = Proof(
                    f"role {subject} cannot satisfy both its uniqueness "
                    "bar and its frequency minimum",
                    (
                        ProofStep(
                            f"{unique.name!r} makes each instance play "
                            "the role at most once",
                            unique.name,
                        ),
                        ProofStep(
                            f"{constraint.name!r} requires at least "
                            f"{constraint.minimum} plays",
                            constraint.name,
                        ),
                    ),
                )
                yield Verdict(
                    VerdictKind.CONTRADICTION, "frequency-conflict",
                    subject, proof,
                )
                seed(
                    node,
                    proof.extended(
                        f"pop(role {subject}) is forced empty: no play "
                        "count satisfies both constraints",
                    ),
                )


def _value_conflicts(values_by_type, seed):
    """Disjoint enumerated domains on one lexical type."""
    for type_name in sorted(values_by_type):
        for first, second in itertools.combinations(
            values_by_type[type_name], 2
        ):
            if set(first.values) & set(second.values):
                continue
            proof = Proof(
                f"value constraints on {type_name!r} enumerate disjoint "
                "domains — no instance satisfies both",
                (
                    ProofStep(
                        f"{first.name!r} restricts {type_name!r} to "
                        f"{tuple(first.values)!r}",
                        first.name,
                    ),
                    ProofStep(
                        f"{second.name!r} restricts {type_name!r} to "
                        f"{tuple(second.values)!r}",
                        second.name,
                    ),
                ),
            )
            yield Verdict(
                VerdictKind.CONTRADICTION, "value-conflict",
                type_name, proof,
            )
            seed(
                _type_node(type_name),
                proof.extended(
                    f"pop(object type {type_name}) is forced empty: its "
                    "value domain is empty",
                ),
            )


def _exclusion_seeds(schema, graph, seed):
    """Exclusion empties every common lower bound of two items."""
    for constraint in schema.exclusions():
        nodes = [_item_node(item) for item in constraint.items]
        for left, right in itertools.combinations(nodes, 2):
            left_paths = graph.lower_bound_paths(left)
            right_paths = graph.lower_bound_paths(right)
            common = sorted(set(left_paths) & set(right_paths), key=repr)
            for node in common:
                disjoint = ProofStep(
                    f"pop({_render_node(left)}) and "
                    f"pop({_render_node(right)}) are disjoint",
                    constraint.name,
                )
                seed(
                    node,
                    Proof(
                        f"pop({_render_node(node)}) is forced empty: "
                        "included in both sides of exclusion "
                        f"{constraint.name!r}",
                        _dedupe(
                            left_paths[node] + right_paths[node]
                            + (disjoint,)
                        ),
                    ),
                )


def _propagate_emptiness(schema, graph, empty, worklist):
    """Close the seeded emptiness over the schema, composing proofs."""
    totals = [c for c in schema.totals() if len(c.items) > 1]
    while True:
        while worklist:
            node = worklist.pop()
            cause = empty[node]
            for affected, statement, premise in graph.empties.get(node, ()):
                if affected in empty:
                    continue
                empty[affected] = cause.extended(
                    f"pop({_render_node(affected)}) is forced empty "
                    f"because pop({_render_node(node)}) is",
                    ProofStep(statement, premise),
                )
                worklist.append(affected)
        # Hyper-rule: a total union whose covering items are all empty
        # empties the constrained object type.
        progressed = False
        for constraint in totals:
            type_node = _type_node(constraint.object_type)
            if type_node in empty:
                continue
            item_nodes = [_item_node(item) for item in constraint.items]
            if not all(node in empty for node in item_nodes):
                continue
            steps: list[ProofStep] = []
            for node in item_nodes:
                steps.extend(empty[node].steps)
            steps.append(
                ProofStep(
                    f"total union {constraint.name!r} covers "
                    f"{constraint.object_type!r} with only empty items",
                    constraint.name,
                )
            )
            empty[type_node] = Proof(
                f"pop(object type {constraint.object_type}) is forced "
                f"empty: total union {constraint.name!r} covers only "
                "empty roles/subtypes",
                _dedupe(steps),
            )
            worklist.append(type_node)
            progressed = True
        if not worklist and not progressed:
            break


def require_satisfiable(schema: BinarySchema) -> ImplicationResult:
    """Raise :class:`~repro.errors.PopulationError` on contradictions.

    The workload generators call this before entering their fill
    fixpoint: an unsatisfiable schema fails fast with the rendered
    contradiction proofs instead of producing a population that can
    never validate.
    """
    result = check_implications(schema)
    if not result.is_satisfiable:
        proofs = "\n".join(
            verdict.proof.render() for verdict in result.contradictions
        )
        raise PopulationError(
            f"schema {schema.name!r} admits no valid population; "
            f"{len(result.contradictions)} contradiction(s) proven:\n"
            f"{proofs}"
        )
    return result
