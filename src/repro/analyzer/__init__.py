"""RIDL-A — the analyzer module (section 3.2 of the paper).

Four functions: (1) correctness of the schema against the rules of
the BRM, (2) completeness, (3) consistency of the set-algebraic
constraints over role and object-type populations, (4) detection of
non-referable object types.
"""

from repro.analyzer.api import analyze, require_mappable
from repro.analyzer.completeness import check_completeness
from repro.analyzer.consistency import ConsistencyResult, check_consistency
from repro.analyzer.correctness import check_correctness
from repro.analyzer.diagnostics import AnalysisReport, Diagnostic, Severity
from repro.analyzer.referability import check_referability

__all__ = [
    "AnalysisReport",
    "ConsistencyResult",
    "Diagnostic",
    "Severity",
    "analyze",
    "check_completeness",
    "check_consistency",
    "check_correctness",
    "check_referability",
    "require_mappable",
]
