"""RIDL-A — the analyzer module (section 3.2 of the paper).

Four functions: (1) correctness of the schema against the rules of
the BRM, (2) completeness, (3) consistency of the set-algebraic
constraints over role and object-type populations, (4) detection of
non-referable object types — plus the constraint implication &
satisfiability engine (:mod:`repro.analyzer.implication`), which
proves redundancy, contradiction and forced-emptiness verdicts with
minimal proof chains.
"""

from repro.analyzer.api import analyze, require_mappable
from repro.analyzer.completeness import check_completeness
from repro.analyzer.consistency import ConsistencyResult, check_consistency
from repro.analyzer.correctness import check_correctness
from repro.analyzer.diagnostics import AnalysisReport, Diagnostic, Severity
from repro.analyzer.implication import (
    ImplicationResult,
    Verdict,
    VerdictKind,
    check_implications,
    require_satisfiable,
)
from repro.analyzer.proofs import Proof, ProofStep
from repro.analyzer.referability import check_referability

__all__ = [
    "AnalysisReport",
    "ConsistencyResult",
    "Diagnostic",
    "ImplicationResult",
    "Proof",
    "ProofStep",
    "Severity",
    "Verdict",
    "VerdictKind",
    "analyze",
    "check_completeness",
    "check_consistency",
    "check_correctness",
    "check_implications",
    "check_referability",
    "require_mappable",
    "require_satisfiable",
]
