"""RIDL-A function 1 — correctness against the rules of the BRM.

RIDL-G enforces some rules at construction time (reference validity,
acyclic sublinks, LOT-free sublinks); the checks here are the
on-demand ones: lexical objects may not relate directly to each
other, constraint items must range over population-compatible types,
uniqueness and frequency constraints must not contradict each other,
and external uniqueness constraints must converge on a common player.
"""

from __future__ import annotations

from repro.analyzer.cache import memoized_on_schema_version
from repro.analyzer.diagnostics import Diagnostic, Severity
from repro.brm.constraints import (
    ConstraintItem,
    EqualityConstraint,
    ExclusionConstraint,
    FrequencyConstraint,
    SubsetConstraint,
    UniquenessConstraint,
)
from repro.brm.facts import RoleId
from repro.brm.schema import BinarySchema


@memoized_on_schema_version()
def check_correctness(schema: BinarySchema) -> list[Diagnostic]:
    """All correctness findings for the schema.

    Memoized on the schema's ``(name, version)`` stamp — the per-step
    guards hit this after every rule firing, and most firings leave
    the schema untouched.  ``check_correctness.uncached(schema)``
    bypasses the memo (the guards use it when they suspect the schema
    was corrupted without a version bump).
    """
    diagnostics: list[Diagnostic] = []
    diagnostics.extend(_check_lexical_facts(schema))
    diagnostics.extend(_check_item_compatibility(schema))
    diagnostics.extend(_check_external_uniqueness_shape(schema))
    diagnostics.extend(_check_frequency_conflicts(schema))
    diagnostics.extend(_check_duplicate_constraints(schema))
    return diagnostics


def _check_lexical_facts(schema: BinarySchema) -> list[Diagnostic]:
    """LOTs carry representations; they do not relate to each other.

    A LOT-NOLOT has a non-lexical face, so only pure LOT-to-LOT fact
    types are illegal.
    """
    from repro.brm.objects import ObjectKind

    diagnostics = []
    for fact in schema.fact_types:
        first = schema.object_type(fact.first.player)
        second = schema.object_type(fact.second.player)
        if first.kind is ObjectKind.LOT and second.kind is ObjectKind.LOT:
            diagnostics.append(
                Diagnostic(
                    Severity.ERROR,
                    "LEXICAL_FACT",
                    fact.name,
                    f"fact type relates two LOTs ({first.name!r}, "
                    f"{second.name!r}); lexical object types may only "
                    "relate to non-lexical ones",
                )
            )
    return diagnostics


def _base_type(schema: BinarySchema, item: ConstraintItem) -> str:
    """The root supertype family an item's population lives in."""
    if isinstance(item, RoleId):
        type_name = schema.player_name(item)
    else:
        type_name = schema.sublink(item.sublink).supertype
    roots = schema.root_supertypes_of(type_name)
    return min(roots)  # deterministic representative


def _check_item_compatibility(schema: BinarySchema) -> list[Diagnostic]:
    """Set-algebraic items must range over comparable populations."""
    diagnostics = []
    for constraint in schema.constraints:
        if isinstance(
            constraint, (ExclusionConstraint, EqualityConstraint, SubsetConstraint)
        ):
            if isinstance(constraint, SubsetConstraint):
                items: tuple[ConstraintItem, ...] = (
                    constraint.subset,
                    constraint.superset,
                )
            else:
                items = constraint.items
            families = {_base_type(schema, item) for item in items}
            if len(families) > 1:
                diagnostics.append(
                    Diagnostic(
                        Severity.ERROR,
                        "INCOMPATIBLE_ITEMS",
                        constraint.name,
                        "constraint items range over unrelated object "
                        f"types (families {sorted(families)!r}); their "
                        "populations can never be compared",
                    )
                )
    return diagnostics


def _check_external_uniqueness_shape(schema: BinarySchema) -> list[Diagnostic]:
    """External uniqueness roles must share a common co-role player."""
    diagnostics = []
    for constraint in schema.uniqueness_constraints():
        if not constraint.is_external:
            continue
        co_players = {
            schema.co_player_name(role_id) for role_id in constraint.roles
        }
        if len(co_players) > 1:
            diagnostics.append(
                Diagnostic(
                    Severity.ERROR,
                    "EXTERNAL_UNIQUENESS_SHAPE",
                    constraint.name,
                    "external uniqueness must identify one common object "
                    f"type, but the co-roles are played by {sorted(co_players)!r}",
                )
            )
    return diagnostics


def _check_frequency_conflicts(schema: BinarySchema) -> list[Diagnostic]:
    """A frequency minimum above 1 contradicts a uniqueness bar."""
    diagnostics = []
    for constraint in schema.constraints:
        if isinstance(constraint, FrequencyConstraint):
            if constraint.minimum > 1 and schema.is_unique(constraint.role):
                diagnostics.append(
                    Diagnostic(
                        Severity.ERROR,
                        "FREQUENCY_CONFLICT",
                        constraint.name,
                        f"role {constraint.role} must occur at least "
                        f"{constraint.minimum} times but also carries a "
                        "uniqueness bar (at most once)",
                    )
                )
    return diagnostics


def _check_duplicate_constraints(schema: BinarySchema) -> list[Diagnostic]:
    """Literally identical constraints under different names are noise."""
    diagnostics = []
    seen: dict[tuple[object, ...], str] = {}
    for constraint in schema.constraints:
        signature = _signature(constraint)
        if signature in seen:
            diagnostics.append(
                Diagnostic(
                    Severity.WARNING,
                    "DUPLICATE_CONSTRAINT",
                    constraint.name,
                    f"duplicates constraint {seen[signature]!r}",
                )
            )
        else:
            seen[signature] = constraint.name
    return diagnostics


def _signature(constraint: object) -> tuple[object, ...]:
    if isinstance(constraint, UniquenessConstraint):
        return ("uniqueness", frozenset(constraint.roles))
    if isinstance(constraint, ExclusionConstraint):
        return ("exclusion", frozenset(constraint.items))
    if isinstance(constraint, EqualityConstraint):
        return ("equality", frozenset(constraint.items))
    if isinstance(constraint, SubsetConstraint):
        return ("subset", constraint.subset, constraint.superset)
    from repro.brm.constraints import TotalUnionConstraint

    if isinstance(constraint, TotalUnionConstraint):
        return (
            "total",
            constraint.object_type,
            frozenset(constraint.items),
        )
    return ("other", id(constraint))
