"""Version-stamped memoization for whole-schema analysis.

The RIDL-A functions are pure functions of the schema's element sets,
and :class:`~repro.brm.schema.BinarySchema` version stamps are
globally unique per mutation event — equal stamps imply equal
elements (copies share the stamp, every mutation takes a fresh one).
A bounded LRU keyed by ``(schema name, version)`` therefore makes
re-analysis of an untouched schema (or of any of its copies) an O(1)
dictionary hit, which is what the per-step guards and the analyzer
gate of ``map_schema`` lean on.

The caches hold *shared* result objects: treat cached reports and
graphs as read-only, exactly like the schema elements themselves.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Callable
from functools import wraps
from typing import TypeVar

from repro.observability.tracer import count as _obs_count
from repro.observability.tracer import span as _obs_span

T = TypeVar("T")

#: All caches created by :func:`memoized_on_schema_version`, so tests
#: (and long-running services) can drop every memo at once.
_REGISTRY: list["OrderedDict"] = []

DEFAULT_MAXSIZE = 64


def memoized_on_schema_version(
    maxsize: int = DEFAULT_MAXSIZE,
) -> Callable[[Callable[..., T]], Callable[..., T]]:
    """Memoize a ``fn(schema)`` on the schema's ``(name, version)``.

    The wrapped function keeps the original callable as
    ``fn.uncached`` (for callers that must bypass the memo, e.g. the
    guards when they suspect an API-bypassing corruption) and gains a
    ``cache_clear()`` like :func:`functools.lru_cache`.
    """

    def decorate(fn: Callable[..., T]) -> Callable[..., T]:
        cache: OrderedDict[tuple[str, int], T] = OrderedDict()
        _REGISTRY.append(cache)

        @wraps(fn)
        def wrapper(schema) -> T:
            key = (schema.name, schema.version)
            try:
                value = cache[key]
            except KeyError:
                _obs_count("analysis.cache.miss")
                # Volatile: whether this cache-fill span exists
                # depends on what earlier work warmed the memo, so
                # the deterministic trace export prunes it.
                with _obs_span(
                    f"analyzer.compute:{fn.__name__}",
                    volatile=True,
                    schema=schema.name,
                ):
                    value = fn(schema)
                cache[key] = value
                if len(cache) > maxsize:
                    cache.popitem(last=False)
            else:
                _obs_count("analysis.cache.hit")
                cache.move_to_end(key)
            return value

        wrapper.uncached = fn
        wrapper.cache_clear = cache.clear
        wrapper.cache = cache
        return wrapper

    return decorate


def clear_all_caches() -> None:
    """Drop every version-stamped analysis memo."""
    for cache in _REGISTRY:
        cache.clear()
