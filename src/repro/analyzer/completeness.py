"""RIDL-A function 2 — completeness of the binary schema.

"It determines whether the binary schema contains all necessary
concepts to be a complete description" (section 3.2).  Concretely:
no dangling object types, every fact type elementary (carrying a
uniqueness constraint), every subtype distinguishable, and no empty
schema.
"""

from __future__ import annotations

from repro.analyzer.diagnostics import Diagnostic, Severity
from repro.brm.indexes import indexes_for
from repro.brm.schema import BinarySchema


def check_completeness(schema: BinarySchema) -> list[Diagnostic]:
    """All completeness findings for the schema."""
    diagnostics: list[Diagnostic] = []
    diagnostics.extend(_check_not_empty(schema))
    diagnostics.extend(_check_isolated_object_types(schema))
    diagnostics.extend(_check_fact_uniqueness(schema))
    diagnostics.extend(_check_subtype_distinguishability(schema))
    return diagnostics


def _check_not_empty(schema: BinarySchema) -> list[Diagnostic]:
    if schema.object_types:
        return []
    return [
        Diagnostic(
            Severity.ERROR,
            "EMPTY_SCHEMA",
            schema.name,
            "the schema defines no object types",
        )
    ]


def _check_isolated_object_types(schema: BinarySchema) -> list[Diagnostic]:
    """Every object type should play a role or take part in a sublink."""
    diagnostics = []
    for object_type in schema.object_types:
        plays = bool(schema.roles_played_by(object_type.name))
        linked = bool(
            schema.sublinks_from(object_type.name)
            or schema.sublinks_to(object_type.name)
        )
        if not plays and not linked:
            diagnostics.append(
                Diagnostic(
                    Severity.WARNING,
                    "ISOLATED_OBJECT_TYPE",
                    object_type.name,
                    "plays no role and takes part in no sublink; it "
                    "carries no information",
                )
            )
    return diagnostics


def _check_fact_uniqueness(schema: BinarySchema) -> list[Diagnostic]:
    """Every fact type needs some uniqueness constraint.

    Without one the fact type is a bag of unconstrained pairs — in
    NIAM terms the analysis is incomplete (an elementary binary fact
    type always has a uniqueness constraint over one role or over the
    pair).
    """
    covered = indexes_for(schema).facts_with_uniqueness
    diagnostics = []
    for fact in schema.fact_types:
        if fact.name not in covered:
            diagnostics.append(
                Diagnostic(
                    Severity.WARNING,
                    "NO_UNIQUENESS",
                    fact.name,
                    "fact type has no uniqueness constraint; add one over "
                    "a role (functional) or over the pair (many-to-many)",
                )
            )
    return diagnostics


def _check_subtype_distinguishability(schema: BinarySchema) -> list[Diagnostic]:
    """A subtype should add something: facts of its own, further
    subtypes, or membership constraints — otherwise it is dead weight."""
    diagnostics = []
    for sublink in schema.sublinks:
        subtype = sublink.subtype
        has_facts = bool(schema.roles_played_by(subtype))
        has_subtypes = bool(schema.subtypes_of(subtype))
        from repro.brm.sublinks import SublinkRef

        constrained = bool(schema.constraints_over(SublinkRef(sublink.name)))
        if not has_facts and not has_subtypes and not constrained:
            diagnostics.append(
                Diagnostic(
                    Severity.WARNING,
                    "INDISTINCT_SUBTYPE",
                    subtype,
                    f"subtype (via sublink {sublink.name!r}) has no facts, "
                    "subtypes or constraints of its own; membership is "
                    "unobservable in the database",
                )
            )
    return diagnostics
