"""Diagnostics and the analysis report.

RIDL-A (section 3.2) performs four functions: correctness,
completeness, consistency of the set-algebraic constraints, and
detection of non-referable object types.  Each function emits
:class:`Diagnostic` records; an :class:`AnalysisReport` aggregates
them per function, so the database engineer (or RIDL-M, which refuses
to map schemas with errors) can act on them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class Severity(Enum):
    """How serious a diagnostic is.

    ``ERROR`` blocks mapping; ``WARNING`` flags quality issues the
    engineer should review; ``INFO`` records analysis facts.
    """

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"


@dataclass(frozen=True)
class Diagnostic:
    """One finding of the analyzer.

    ``code`` is a stable machine-readable identifier (e.g.
    ``LEXICAL_FACT``); ``subject`` names the schema element concerned.
    """

    severity: Severity
    code: str
    subject: str
    message: str

    def __str__(self) -> str:
        return f"{self.severity.value}[{self.code}] {self.subject}: {self.message}"


@dataclass
class AnalysisReport:
    """The combined result of RIDL-A's four functions."""

    schema_name: str
    correctness: list[Diagnostic] = field(default_factory=list)
    completeness: list[Diagnostic] = field(default_factory=list)
    consistency: list[Diagnostic] = field(default_factory=list)
    referability: list[Diagnostic] = field(default_factory=list)

    @property
    def diagnostics(self) -> list[Diagnostic]:
        """All diagnostics from all four functions."""
        return (
            self.correctness
            + self.completeness
            + self.consistency
            + self.referability
        )

    @property
    def errors(self) -> list[Diagnostic]:
        """Only the mapping-blocking findings."""
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> list[Diagnostic]:
        """Only the review-worthy findings."""
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    @property
    def is_mappable(self) -> bool:
        """True when RIDL-M may proceed (no errors)."""
        return not self.errors

    def lint_diagnostics(self) -> list:
        """The report's findings as lint diagnostics.

        The compatibility shim onto :mod:`repro.lint`: each finding
        is re-issued under its stable ``BRM0xx`` lint code (the
        analyzer's symbolic codes remain this module's public API).
        Imported lazily so the analyzer keeps no hard dependency on
        the lint subsystem.
        """
        from repro.lint.diagnostics import LintDiagnostic
        from repro.lint.rules_schema import LEGACY_CODES

        ported = [
            LintDiagnostic(
                code=LEGACY_CODES[d.code],
                severity=d.severity,
                subject=d.subject,
                message=d.message,
            )
            for d in self.diagnostics
            if d.code in LEGACY_CODES
        ]
        ported.sort(key=LintDiagnostic.sort_key)
        return ported

    def render(self) -> str:
        """A human-readable multi-section report."""
        lines = [f"RIDL-A analysis of schema {self.schema_name!r}"]
        sections = (
            ("1. Correctness", self.correctness),
            ("2. Completeness", self.completeness),
            ("3. Constraint consistency", self.consistency),
            ("4. Referability", self.referability),
        )
        for title, diagnostics in sections:
            lines.append(f"{title}: " + ("OK" if not diagnostics else ""))
            lines.extend(f"  {d}" for d in diagnostics)
        verdict = "MAPPABLE" if self.is_mappable else "NOT MAPPABLE"
        lines.append(
            f"Verdict: {verdict} ({len(self.errors)} errors, "
            f"{len(self.warnings)} warnings)"
        )
        return "\n".join(lines)
