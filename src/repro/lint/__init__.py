"""``repro.lint`` — the static-diagnostics engine.

A compiler-style lint framework over the three artifact classes the
RIDL* pipeline produces: the binary conceptual schema (``BRM0xx``
smells, porting RIDL-A's four analyses onto stable codes), the
transformation trace (``TRC1xx`` losslessness checks), the generated
DDL (``SQL2xx`` dialect checks) and the bidirectional map report
(``MAP3xx`` cross-artifact checks).  See ``docs/LINTING.md`` for the
rule catalogue and the suppression-pragma syntax.
"""

from repro.lint.diagnostics import LintDiagnostic, LintReport
from repro.lint.engine import LintContext, lint_schema
from repro.lint.registry import (
    REGISTRY,
    LintRule,
    all_rules,
    lint_rule,
    resolve_selectors,
)
from repro.lint.render import render_json, render_sarif, render_text
from repro.lint.rules_schema import LEGACY_CODES

__all__ = [
    "LEGACY_CODES",
    "LintContext",
    "LintDiagnostic",
    "LintReport",
    "LintRule",
    "REGISTRY",
    "all_rules",
    "lint_rule",
    "lint_schema",
    "render_json",
    "render_sarif",
    "render_text",
    "resolve_selectors",
]
