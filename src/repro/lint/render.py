"""Renderers for lint reports: text, JSON, SARIF 2.1.0.

All three formats are byte-deterministic: diagnostics are already in
``(code, subject, message)`` order, JSON is emitted with sorted keys
and no timestamps, and the SARIF run carries no environment-dependent
fields.  The SARIF output targets CI annotation (GitHub code
scanning, Azure DevOps) and embeds the rule metadata from the
registry so viewers can show the catalogue entry next to a finding.
"""

from __future__ import annotations

import json

from repro.analyzer.diagnostics import Severity
from repro.lint.diagnostics import LintReport
from repro.lint.registry import all_rules

#: SARIF result levels per severity (SARIF calls INFO "note").
SARIF_LEVELS = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.INFO: "note",
}

SARIF_SCHEMA_URI = (
    "https://docs.oasis-open.org/sarif/sarif/v2.1.0/os/schemas/"
    "sarif-schema-2.1.0.json"
)


def render_text(report: LintReport) -> str:
    """The human-readable report, one line per finding."""
    lines = [f"repro lint report for schema {report.schema_name!r}"]
    lines.extend(str(d) for d in report.diagnostics)
    counts = report.counts()
    summary = (
        f"{counts['errors']} error(s), {counts['warnings']} warning(s), "
        f"{counts['infos']} info(s)"
    )
    if report.suppressed:
        summary += f", {report.suppressed} suppressed"
    if report.skipped_artifacts:
        summary += (
            "; skipped artifact pass(es): "
            + ", ".join(report.skipped_artifacts)
        )
    lines.append(summary)
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    """A machine-readable JSON document (sorted keys, stable order)."""
    document = {
        "schema": report.schema_name,
        "counts": report.counts(),
        "skipped_artifacts": list(report.skipped_artifacts),
        "diagnostics": [
            {
                "code": d.code,
                "severity": d.severity.value,
                "subject": d.subject,
                "message": d.message,
            }
            for d in report.diagnostics
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True) + "\n"


def render_sarif(report: LintReport, artifact_uri: str | None = None) -> str:
    """A SARIF 2.1.0 log for CI annotation.

    ``artifact_uri`` (the linted schema file, when known) becomes the
    physical location of every result; the finding's subject is
    always recorded as a logical location.
    """
    rules = [
        {
            "id": rule.code,
            "name": rule.slug,
            "shortDescription": {"text": rule.summary},
            "defaultConfiguration": {
                "level": SARIF_LEVELS[rule.severity]
            },
            "properties": {"artifact": rule.artifact},
        }
        for rule in all_rules()
    ]
    results = []
    for diagnostic in report.diagnostics:
        result = {
            "ruleId": diagnostic.code,
            "level": SARIF_LEVELS[diagnostic.severity],
            "message": {
                "text": f"{diagnostic.subject}: {diagnostic.message}"
            },
            "locations": [
                {
                    "logicalLocations": [
                        {"name": diagnostic.subject}
                    ]
                }
            ],
        }
        if artifact_uri is not None:
            result["locations"][0]["physicalLocation"] = {
                "artifactLocation": {"uri": artifact_uri}
            }
        results.append(result)
    document = {
        "$schema": SARIF_SCHEMA_URI,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "rules": rules,
                    }
                },
                "results": results,
                "columnKind": "utf16CodeUnits",
            }
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True) + "\n"
