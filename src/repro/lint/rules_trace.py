"""``TRC1xx`` — transformation-trace and losslessness checks.

The paper's §5 argument is that every basic transformation is
lossless *because* each dropped binary constraint is replaced by a
generated rule (equality view, dependent existence, equal existence,
conditional equality) or a pseudo-SQL specification.  These rules
replay the recorded :class:`~repro.mapper.trace.AppliedStep` list and
verify that argument statically, without populations:

* TRC101 — every source-schema constraint must be *accounted for*:
  survive into the canonical schema, be expressed in the forwards
  map, be covered by a pseudo constraint, or be named by a trace
  step (as target or generated lossless rule).  A seeded fault that
  silently drops a constraint mid-session trips exactly this rule.
* TRC102 — every lossless rule a step cites must resolve: steps on
  the relational side cite relational constraints (or pseudo
  specifications); binary-binary steps cite canonical-schema
  elements.
* TRC103 — every generated view constraint must be cited by some
  step (an orphan rule means the trace under-documents the session).
* TRC104 — step kinds are closed: only the three basic
  transformation classes of §5 exist.
"""

from __future__ import annotations

import re

from repro.analyzer.diagnostics import Severity
from repro.lint.registry import lint_rule
from repro.mapper.concepts import describe_constraint
from repro.mapper.trace import KIND_BINARY, STEP_KINDS

_WORDS = re.compile(r"[A-Za-z_][A-Za-z0-9_$]*")


def _accounted_names(result) -> set[str]:
    """Every element name the trace or pseudo specs account for."""
    names: set[str] = set()
    for pseudo in result.pseudo_constraints:
        names.add(pseudo.name)
        names.update(pseudo.derived_from)
    for step in result.steps:
        names.add(step.target)
        names.update(step.lossless_rules)
        names.update(_WORDS.findall(step.detail))
    return names


@lint_rule("TRC101", "unaccounted-constraint", Severity.ERROR)
def check_unaccounted_constraint(context):
    """A constraint was dropped without a lossless rule or mapping.

    Replays the trace: a source constraint that neither survives into
    the canonical schema, nor appears in the forwards map, nor is
    covered by a pseudo constraint, nor is named by any applied step
    was lost silently — the transformation sequence is not lossless.
    """
    result = context.result
    accounted = _accounted_names(result)
    forward = result.provenance.forward_concepts()
    canonical = result.canonical
    for constraint in result.source.constraints:
        if canonical.has_constraint(constraint.name):
            continue
        if constraint.name in accounted:
            continue
        if describe_constraint(result.source, constraint) in forward:
            continue
        yield constraint.name, (
            "source constraint was dropped with no lossless rule, "
            "pseudo constraint, forwards-map entry or trace step "
            "covering it"
        )
    for constraint in canonical.constraints:
        if constraint.name in accounted:
            continue
        if describe_constraint(canonical, constraint) in forward:
            continue
        yield constraint.name, (
            "canonical constraint reached materialization but has no "
            "forwards-map entry, pseudo constraint or trace step"
        )


@lint_rule("TRC102", "phantom-lossless-rule", Severity.ERROR)
def check_phantom_lossless_rule(context):
    """A trace step cites a lossless rule that does not exist.

    Relational-side steps must cite constraints of the generated
    relational schema (or pseudo-constraint specifications);
    binary-binary steps cite elements of the canonical binary schema.
    A citation that resolves nowhere means the trace claims a
    safeguard that was never generated.
    """
    result = context.result
    relational = result.relational
    canonical = result.canonical
    pseudo_names = {p.name for p in result.pseudo_constraints}
    for number, step in enumerate(result.steps, start=1):
        for rule_name in step.lossless_rules:
            if rule_name in pseudo_names:
                continue
            if step.kind == KIND_BINARY:
                known = (
                    canonical.has_constraint(rule_name)
                    or canonical.has_fact_type(rule_name)
                    or canonical.has_sublink(rule_name)
                )
            else:
                known = relational.has_constraint(rule_name)
            if not known:
                yield f"step {number} ({step.transformation})", (
                    f"cites lossless rule {rule_name!r} which exists "
                    "in neither the generated schema nor the pseudo "
                    "constraints"
                )


@lint_rule("TRC103", "orphan-lossless-rule", Severity.WARNING)
def check_orphan_lossless_rule(context):
    """A generated view constraint is cited by no trace step.

    Every ``C_EQ$``/``C_SUB$`` rule exists to compensate a specific
    transformation; one that no step claims leaves the map report
    unable to explain why the rule is there.
    """
    result = context.result
    cited: set[str] = set()
    for step in result.steps:
        cited.update(step.lossless_rules)
    for constraint in result.relational.view_constraints():
        if constraint.name not in cited:
            yield constraint.name, (
                "view constraint is not cited as a lossless rule by "
                "any trace step"
            )


@lint_rule("TRC104", "unknown-step-kind", Severity.ERROR)
def check_unknown_step_kind(context):
    """A trace step has a kind outside the three basic classes.

    Section 5 defines exactly three transformation classes
    (binary-binary, binary-relational, relational-relational); any
    other kind means the trace was corrupted or hand-edited.
    """
    for number, step in enumerate(context.result.steps, start=1):
        if step.kind not in STEP_KINDS:
            yield f"step {number} ({step.transformation})", (
                f"unknown step kind {step.kind!r}; expected one of "
                f"{', '.join(sorted(STEP_KINDS))}"
            )
