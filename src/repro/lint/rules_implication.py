"""``IMP4xx`` — constraint implication & satisfiability findings.

These rules surface the verdicts of the saturation engine
(:mod:`repro.analyzer.implication`) with their full proof chains in
the message, so a finding is never just "this looks redundant" — it
names exactly the constraints and structural inclusions it follows
from:

* IMP401–IMP405 — a declared constraint is *implied* by the rest of
  the schema (subset, equality, uniqueness, frequency, value), one
  rule per constraint kind so families can be suppressed
  independently;
* IMP406 — a role or sublink is *forced empty*: legal, but every
  constraint over it is dead weight;
* IMP407 — conflicting frequency bounds on one role admit no play
  count (an error: the role, and anything total over it, can never
  be populated);
* IMP408 — the schema is contradictory: an object type is forced
  empty, or two value constraints enumerate disjoint domains.

The warnings (401–406) overlap deliberately with coarser BRM-family
smells (e.g. BRM017 flags redundant subsets by reachability): the
IMP rules add the machine-checkable proof chain, which is what the
executor's ``prune_implied`` mode and the robustness kill-shot test
consume.
"""

from __future__ import annotations

from repro.analyzer.diagnostics import Severity
from repro.analyzer.implication import VerdictKind
from repro.lint.registry import lint_rule


def _implied(context, category):
    for verdict in context.implications.implied:
        if verdict.category == category:
            yield verdict.subject, verdict.proof.render_inline()


@lint_rule("IMP401", "implied-subset", Severity.WARNING)
def implied_subset(context):
    """Subset constraint provably implied by other inclusions."""
    yield from _implied(context, "subset")


@lint_rule("IMP402", "implied-equality", Severity.WARNING)
def implied_equality(context):
    """Equality constraint provably implied by an inclusion cycle."""
    yield from _implied(context, "equality")


@lint_rule("IMP403", "implied-uniqueness", Severity.WARNING)
def implied_uniqueness(context):
    """Uniqueness constraint implied by a frequency maximum of 1."""
    yield from _implied(context, "uniqueness")


@lint_rule("IMP404", "implied-frequency", Severity.WARNING)
def implied_frequency(context):
    """Frequency constraint vacuous or subsumed by a tighter bound."""
    yield from _implied(context, "frequency")


@lint_rule("IMP405", "implied-value", Severity.WARNING)
def implied_value(context):
    """Value constraint containing another domain on the same type."""
    yield from _implied(context, "value")


@lint_rule("IMP406", "forced-empty-item", Severity.WARNING)
def forced_empty_item(context):
    """Role or sublink whose population is provably always empty."""
    for verdict in context.implications.forced_empty:
        yield verdict.subject, verdict.proof.render_inline()


@lint_rule("IMP407", "frequency-contradiction", Severity.ERROR)
def frequency_contradiction(context):
    """Frequency bounds on one role admit no common play count."""
    for verdict in context.implications.contradictions:
        if verdict.category == "frequency-conflict":
            yield verdict.subject, verdict.proof.render_inline()


@lint_rule("IMP408", "schema-contradiction", Severity.ERROR)
def schema_contradiction(context):
    """Constraint set is unsatisfiable: an object type is forced empty."""
    for verdict in context.implications.contradictions:
        if verdict.category in ("empty-type", "value-conflict"):
            yield verdict.subject, verdict.proof.render_inline()
