"""The lint driver: build the artifact context, run the rules.

``lint_schema`` is the library entry point behind ``repro lint``.  It
analyzes the schema (memoized on the schema's version stamp, so a
lint run after a mapping session re-uses the analyzer's work), maps
it once with default options when no :class:`MappingResult` is
supplied, and feeds every selected rule one shared
:class:`LintContext`.  Rules whose artifact could not be produced
(e.g. trace rules on an unmappable schema) are skipped and recorded
in the report's ``skipped_artifacts``.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field
from functools import cached_property

from repro.analyzer import analyze
from repro.analyzer.consistency import SubsetGraph, subset_graph_for
from repro.analyzer.diagnostics import AnalysisReport
from repro.analyzer.implication import ImplicationResult, check_implications
from repro.brm.indexes import SchemaIndexes, indexes_for
from repro.brm.schema import BinarySchema
from repro.dsl.pragmas import SuppressionPragmas, parse_pragmas
from repro.errors import AnalysisError, MappingError
from repro.lint.diagnostics import LintDiagnostic, LintReport
from repro.lint.registry import all_rules, resolve_selectors
from repro.observability.tracer import count as _obs_count
from repro.observability.tracer import span as _obs_span
from repro.sql.dialects import PROFILES
from repro.sql.emitter import DialectProfile


@dataclass
class LintContext:
    """Everything a rule may examine, computed once per run."""

    schema: BinarySchema
    report: AnalysisReport
    result: object | None = None  # MappingResult when the schema mapped
    dialect: str = "sql2"
    profile: DialectProfile = field(
        default_factory=lambda: PROFILES["sql2"]
    )

    @cached_property
    def indexes(self) -> SchemaIndexes:
        """The shared per-version schema indexes (no fresh scans)."""
        return indexes_for(self.schema)

    @cached_property
    def subset_graph(self) -> SubsetGraph:
        """The memoized population-inclusion graph."""
        return subset_graph_for(self.schema)

    @cached_property
    def implications(self) -> ImplicationResult:
        """The memoized implication/satisfiability verdicts."""
        return check_implications(self.schema)


def lint_schema(
    schema: BinarySchema,
    *,
    result=None,
    source: str | None = None,
    dialect: str = "sql2",
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
) -> LintReport:
    """Run the lint rules over a schema and its mapping artifacts.

    ``result`` may be a precomputed :class:`MappingResult`; without
    one the schema is mapped under default options (skipping the
    trace/sql/map passes when it cannot be).  ``source`` is the raw
    DSL text, scanned for ``lint: disable=`` pragmas.  ``select`` and
    ``ignore`` are exact codes or code prefixes; unknown ones raise
    ``ValueError``.
    """
    selected = resolve_selectors(select) if select else None
    ignored = resolve_selectors(ignore) if ignore else frozenset()
    pragmas = parse_pragmas(source) if source else None
    if pragmas is not None and pragmas.codes:
        # Validate pragma codes exactly like --select/--ignore codes.
        resolve_selectors(pragmas.codes)

    with _obs_span("lint.schema", schema=schema.name, dialect=dialect):
        with _obs_span("lint.artifacts"):
            report = analyze(schema)
            skipped: tuple[str, ...] = ()
            if result is None:
                result = _map_quietly(schema)
            if result is None:
                skipped = ("trace", "sql", "map")

        context = LintContext(
            schema=schema,
            report=report,
            result=result,
            dialect=dialect,
            profile=PROFILES[dialect],
        )
        diagnostics: list[LintDiagnostic] = []
        suppressed = 0
        for rule in all_rules():
            if selected is not None and rule.code not in selected:
                continue
            if rule.code in ignored:
                continue
            if rule.artifact in skipped:
                continue
            with _obs_span(f"lint:{rule.code}") as rule_span:
                findings = list(rule.check(context))
                rule_span.set("findings", len(findings))
            _obs_count("lint.diagnostics", len(findings))
            for subject, message in findings:
                diagnostic = LintDiagnostic(
                    code=rule.code,
                    severity=rule.severity,
                    subject=subject,
                    message=message,
                )
                if _is_suppressed(diagnostic, pragmas):
                    suppressed += 1
                    continue
                diagnostics.append(diagnostic)
        return LintReport(
            schema_name=schema.name,
            diagnostics=diagnostics,
            suppressed=suppressed,
            skipped_artifacts=skipped,
        )


def _map_quietly(schema: BinarySchema):
    """Default-option mapping, or ``None`` when the schema won't map."""
    from repro.mapper import MappingOptions, map_schema

    try:
        return map_schema(schema, MappingOptions())
    except (AnalysisError, MappingError):
        return None


def _is_suppressed(
    diagnostic: LintDiagnostic, pragmas: SuppressionPragmas | None
) -> bool:
    if pragmas is None:
        return False
    return pragmas.is_suppressed(diagnostic.code, diagnostic.subject)
