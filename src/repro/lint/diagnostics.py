"""The lint diagnostic type and the aggregated report.

``repro lint`` is the static half of the paper's "computer-assisted
engineering" story: RIDL-A's four analyses plus new passes over the
transformation trace, the generated DDL and the bidirectional map
report, all reporting through one compiler-style diagnostic record
with a stable machine-readable code (``BRM0xx`` schema smells,
``TRC1xx`` trace/losslessness checks, ``SQL2xx`` dialect checks,
``MAP3xx`` cross-artifact checks, ``IMP4xx`` constraint-implication
proofs).

Severities reuse :class:`repro.analyzer.diagnostics.Severity` so the
analyzer's findings port onto the lint report without translation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analyzer.diagnostics import Severity

#: Code-prefix -> the artifact class a rule family examines.
ARTIFACTS = {
    "BRM": "schema",
    "TRC": "trace",
    "SQL": "sql",
    "MAP": "map",
    "IMP": "schema",
}


@dataclass(frozen=True)
class LintDiagnostic:
    """One finding of the lint engine.

    ``code`` is the stable rule code (``BRM009``), ``subject`` names
    the artifact element concerned (an object type, a trace step, a
    SQL identifier, a map-report entry) and ``message`` explains the
    finding.  Instances sort by ``(code, subject, message)``, which is
    the deterministic report order every renderer relies on.
    """

    code: str
    severity: Severity
    subject: str
    message: str

    @property
    def artifact(self) -> str:
        """The artifact family the code belongs to (schema/trace/...)."""
        return ARTIFACTS.get(self.code[:3], "schema")

    def sort_key(self) -> tuple[str, str, str]:
        """The deterministic report ordering."""
        return (self.code, self.subject, self.message)

    def __str__(self) -> str:
        return (
            f"{self.severity.value}[{self.code}] "
            f"{self.subject}: {self.message}"
        )


@dataclass
class LintReport:
    """Every finding of one lint run, in deterministic order.

    ``suppressed`` counts findings removed by ``lint: disable=``
    pragmas; ``skipped_artifacts`` names artifact families that could
    not be produced (e.g. no trace when the schema is unmappable), so
    a clean report can be told apart from an unexamined one.
    """

    schema_name: str
    diagnostics: list[LintDiagnostic] = field(default_factory=list)
    suppressed: int = 0
    skipped_artifacts: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        self.diagnostics.sort(key=LintDiagnostic.sort_key)

    @property
    def errors(self) -> list[LintDiagnostic]:
        """Findings that make the lint run fail (exit code 1)."""
        return [
            d for d in self.diagnostics if d.severity is Severity.ERROR
        ]

    @property
    def warnings(self) -> list[LintDiagnostic]:
        """Review-worthy findings."""
        return [
            d for d in self.diagnostics if d.severity is Severity.WARNING
        ]

    @property
    def infos(self) -> list[LintDiagnostic]:
        """Informational findings."""
        return [d for d in self.diagnostics if d.severity is Severity.INFO]

    @property
    def is_clean(self) -> bool:
        """True when no error-severity finding survived suppression."""
        return not self.errors

    @property
    def exit_code(self) -> int:
        """The CLI exit code: 0 clean, 1 when errors remain."""
        return 0 if self.is_clean else 1

    def counts(self) -> dict[str, int]:
        """Severity tallies (used by the renderers and tests)."""
        return {
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "infos": len(self.infos),
            "suppressed": self.suppressed,
        }
