"""``BRM0xx`` — binary-schema smells.

Rules BRM001..BRM014 port RIDL-A's four analysis functions onto
stable lint codes (the analyzer's symbolic codes such as
``LEXICAL_FACT`` stay its public API; :data:`LEGACY_CODES` is the
bridge).  BRM015..BRM017 are new static smells over the same schema:
unreferable types that would still be mapped, transitively redundant
sublinks, and subset constraints already implied by the rest of the
population-inclusion graph (via the condensed
:class:`~repro.analyzer.consistency.SubsetGraph`).
"""

from __future__ import annotations

from repro.analyzer.consistency import SubsetGraph, _item_node
from repro.analyzer.diagnostics import Severity
from repro.brm.constraints import SubsetConstraint
from repro.lint.registry import lint_rule

#: Analyzer symbolic code -> lint code.  One rule per legacy code so
#: ``--select``/``--ignore`` and suppression work at analyzer
#: granularity.
LEGACY_CODES = {
    "LEXICAL_FACT": "BRM001",
    "INCOMPATIBLE_ITEMS": "BRM002",
    "EXTERNAL_UNIQUENESS_SHAPE": "BRM003",
    "FREQUENCY_CONFLICT": "BRM004",
    "DUPLICATE_CONSTRAINT": "BRM005",
    "EMPTY_SCHEMA": "BRM006",
    "ISOLATED_OBJECT_TYPE": "BRM007",
    "NO_UNIQUENESS": "BRM008",
    "INDISTINCT_SUBTYPE": "BRM009",
    "FORCED_EMPTY_TYPE": "BRM010",
    "FORCED_EMPTY_ROLE": "BRM011",
    "FORCED_EMPTY_SUBLINK": "BRM012",
    "NOT_REFERABLE": "BRM013",
    "REFERENCE_SCHEME": "BRM014",
}


def _ported(legacy_code: str):
    """A check that relays one analyzer code's findings."""

    def check(context):
        for diagnostic in context.report.diagnostics:
            if diagnostic.code == legacy_code:
                yield diagnostic.subject, diagnostic.message

    return check


def _port(code, slug, severity, legacy_code, doc):
    check = _ported(legacy_code)
    check.__doc__ = doc
    check.__name__ = f"check_{slug.replace('-', '_')}"
    lint_rule(code, slug, severity)(check)


_port(
    "BRM001", "lexical-fact", Severity.ERROR, "LEXICAL_FACT",
    "A fact type connects two lexical object types (LOTs).",
)
_port(
    "BRM002", "incompatible-items", Severity.ERROR, "INCOMPATIBLE_ITEMS",
    "A set-algebraic constraint relates incompatible items.",
)
_port(
    "BRM003", "external-uniqueness-shape", Severity.ERROR,
    "EXTERNAL_UNIQUENESS_SHAPE",
    "An external uniqueness constraint has an invalid role shape.",
)
_port(
    "BRM004", "frequency-conflict", Severity.ERROR, "FREQUENCY_CONFLICT",
    "A frequency constraint conflicts with a uniqueness constraint.",
)
_port(
    "BRM005", "duplicate-constraint", Severity.WARNING,
    "DUPLICATE_CONSTRAINT",
    "Two constraints of the same kind cover the same items.",
)
_port(
    "BRM006", "empty-schema", Severity.ERROR, "EMPTY_SCHEMA",
    "The schema declares no fact types at all.",
)
_port(
    "BRM007", "isolated-object-type", Severity.WARNING,
    "ISOLATED_OBJECT_TYPE",
    "An object type plays no role and has no sublink.",
)
_port(
    "BRM008", "no-uniqueness", Severity.WARNING, "NO_UNIQUENESS",
    "A fact type carries no uniqueness constraint on either role.",
)
_port(
    "BRM009", "indistinct-subtype", Severity.WARNING, "INDISTINCT_SUBTYPE",
    "A subtype adds no fact or constraint of its own.",
)
_port(
    "BRM010", "forced-empty-type", Severity.ERROR, "FORCED_EMPTY_TYPE",
    "Set-algebraic constraints force an object type's population empty.",
)
_port(
    "BRM011", "forced-empty-role", Severity.WARNING, "FORCED_EMPTY_ROLE",
    "Set-algebraic constraints force a role's population empty.",
)
_port(
    "BRM012", "forced-empty-sublink", Severity.WARNING,
    "FORCED_EMPTY_SUBLINK",
    "Set-algebraic constraints force a subtype's population empty.",
)
_port(
    "BRM013", "not-referable", Severity.ERROR, "NOT_REFERABLE",
    "A NOLOT has no one-to-one lexical reference scheme.",
)
_port(
    "BRM014", "reference-scheme", Severity.INFO, "REFERENCE_SCHEME",
    "Records the lexical reference scheme chosen for a NOLOT.",
)


@lint_rule("BRM015", "unreferable-but-mapped", Severity.WARNING)
def check_unreferable_but_mapped(context):
    """A non-referable type still participates in mappable facts.

    Under ``NullPolicy.ALLOWED`` the mapper tolerates non-referable
    types, so facts involving them reach the relational schema with
    no stable key to address the instances — flagged separately from
    BRM013 because it concerns what *would be mapped*, not just the
    missing naming convention.
    """
    # The memoized analysis already ran the reference resolver; its
    # NOT_REFERABLE subjects are exactly the non-referable types.
    non_referable = sorted(
        d.subject
        for d in context.report.diagnostics
        if d.code == "NOT_REFERABLE"
    )
    for name in non_referable:
        facts = context.indexes.facts_by_player.get(name, ())
        sublinks = context.indexes.sublinks_by_subtype.get(name, ())
        carried = len(facts) + len(sublinks)
        if carried:
            yield name, (
                f"non-referable type participates in {carried} "
                "mappable fact(s)/sublink(s); its rows would have no "
                "one-to-one lexical key"
            )


@lint_rule("BRM016", "transitive-sublink", Severity.WARNING)
def check_transitive_sublink(context):
    """A sublink duplicates a longer chain of sublinks.

    A direct sublink ``A IS C`` next to a chain ``A IS B IS C`` adds
    no population information (subtype inclusion already composes);
    it only multiplies the mapped artifacts of the subtype hierarchy.
    """
    by_subtype = context.indexes.sublinks_by_subtype
    for sublink in context.schema.sublinks:
        for middle in by_subtype.get(sublink.subtype, ()):
            if middle.name == sublink.name:
                continue
            ancestors = context.indexes.ancestors_of(middle.supertype)
            if (
                sublink.supertype == middle.supertype
                or sublink.supertype in ancestors
            ):
                yield sublink.name, (
                    f"sublink {sublink.subtype} IS {sublink.supertype} "
                    "is implied by the chain through "
                    f"{middle.supertype}"
                )
                break


@lint_rule("BRM017", "redundant-subset", Severity.WARNING)
def check_redundant_subset(context):
    """A subset constraint is implied by the rest of the schema.

    Checked on the condensed
    :class:`~repro.analyzer.consistency.SubsetGraph`: a constraint is
    redundant when its inclusion still holds after removing it.  The
    graph-with-one-edge-removed rebuild only runs for constraints
    whose inclusion has an alternative path through some intermediate
    node (a necessary condition), so healthy schemas pay one cheap
    reachability sweep.
    """
    graph = context.subset_graph
    explicit = [
        c
        for c in context.schema.constraints
        if isinstance(c, SubsetConstraint)
    ]
    if not explicit:
        return
    for constraint in explicit:
        sub = _item_node(constraint.subset)
        sup = _item_node(constraint.superset)
        if not graph.has_intermediate(sub, sup):
            continue
        probe = context.schema.copy()
        probe.remove_constraint(constraint.name)
        if SubsetGraph(probe).reaches(sub, sup):
            yield constraint.name, (
                "subset constraint is already implied by the other "
                "constraints and the subtype/fact structure"
            )
