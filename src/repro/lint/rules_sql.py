"""``SQL2xx`` — dialect and DDL identifier checks.

"From this generic relational schema a schema definition for any
relational DBMS can be derived" (§4.3) — but only if every generated
name is a legal identifier there.  These rules check the generated
relation, column, constraint and domain names against the selected
:class:`~repro.sql.emitter.DialectProfile`: lexical shape, 1989-era
length limits, case-insensitive uniqueness per namespace, and
reserved words.
"""

from __future__ import annotations

import re

from repro.analyzer.diagnostics import Severity
from repro.lint.registry import lint_rule

#: The identifier shape every profiled 1989 dialect accepts: a
#: letter, then letters/digits/underscores/``$``/``#``.
IDENTIFIER = re.compile(r"^[A-Za-z][A-Za-z0-9_$#]*$")


def _identifiers(result):
    """``(namespace, name)`` pairs for every generated identifier.

    Namespaces mirror SQL's scoping: relations, domains and
    constraints are schema-wide; columns are scoped per relation.
    """
    schema = result.relational
    for relation in schema.relations:
        yield "relation", relation.name
        for attribute in relation.attributes:
            yield f"column in {relation.name}", attribute.name
    for domain in schema.domains:
        yield "domain", domain.name
    for constraint in schema.constraints:
        yield "constraint", constraint.name


@lint_rule("SQL201", "invalid-identifier", Severity.ERROR)
def check_invalid_identifier(context):
    """A generated name is not a legal SQL identifier.

    Identifiers must start with a letter and contain only letters,
    digits, underscores, ``$`` or ``#`` — the intersection of what
    the five profiled dialects accept without quoting.
    """
    for namespace, name in _identifiers(context.result):
        if not IDENTIFIER.match(name):
            yield name, f"{namespace} name is not a legal SQL identifier"


@lint_rule("SQL202", "identifier-collision", Severity.ERROR)
def check_identifier_collision(context):
    """Two generated names collide case-insensitively.

    SQL folds unquoted identifiers to one case, so ``Paper`` and
    ``PAPER`` in the same namespace denote the same object; the DDL
    would fail to load or silently merge two concepts.
    """
    seen: dict[tuple[str, str], str] = {}
    for namespace, name in _identifiers(context.result):
        key = (namespace, name.upper())
        first = seen.setdefault(key, name)
        if first != name:
            yield name, (
                f"{namespace} name collides case-insensitively with "
                f"{first!r}"
            )


@lint_rule("SQL203", "identifier-too-long", Severity.WARNING)
def check_identifier_too_long(context):
    """A generated name exceeds the dialect's identifier limit.

    1989-era limits are short (DB2: 18, INGRES: 24, ORACLE: 30); a
    longer name must be renamed or truncated before the DDL loads on
    that target.
    """
    limit = context.profile.max_identifier_length
    for namespace, name in _identifiers(context.result):
        if len(name) > limit:
            yield name, (
                f"{namespace} name has {len(name)} characters; "
                f"{context.profile.name} allows {limit}"
            )


@lint_rule("SQL204", "reserved-word", Severity.WARNING)
def check_reserved_word(context):
    """A generated name is a reserved word of the dialect.

    Reserved words cannot be used as unquoted identifiers; the DDL
    would be rejected (or worse, reinterpreted) by the target DBMS.
    """
    reserved = context.profile.reserved_words
    for namespace, name in _identifiers(context.result):
        if name.upper() in reserved:
            yield name, (
                f"{namespace} name is a reserved word of "
                f"{context.profile.name}"
            )


@lint_rule("SQL205", "checker-identifier-unportable", Severity.WARNING)
def check_checker_identifier_unportable(context):
    """A lossless rule's checker query uses an unportable identifier.

    The validation harness (:mod:`repro.executor`) compiles every
    lossless rule into an executable checker query.  A query that
    references a relation or column name the selected dialect would
    truncate or treat as a reserved word cannot run there unquoted —
    the rule would be silently unenforceable on that target.
    """
    from repro.executor.compile import compile_rules

    schema = context.result.relational
    known = {name for _, name in _identifiers(context.result)}
    limit = context.profile.max_identifier_length
    reserved = context.profile.reserved_words
    for rule in compile_rules(schema):
        referenced = set(
            re.findall(r"[A-Za-z][A-Za-z0-9_$#]*", rule.sql)
        )
        offending = sorted(
            name
            for name in referenced & known
            if len(name) > limit or name.upper() in reserved
        )
        if offending:
            yield rule.name, (
                f"checker query references identifiers "
                f"{context.profile.name} would truncate or reserve: "
                f"{', '.join(offending)}"
            )
