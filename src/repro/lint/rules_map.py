"""``MAP3xx`` — cross-artifact checks over the map report.

The map report is "essential for application programmers" (§4.3); a
dangling reference in it sends a programmer to a table or column that
does not exist.  These rules verify that every backwards-map entry
resolves against the generated relational schema, that every
forwards-map SELECT reads from real relations, and that the
provenance discipline is complete (every relation derived from
something, every non-key constraint documented).
"""

from __future__ import annotations

from repro.analyzer.diagnostics import Severity
from repro.lint.registry import lint_rule
from repro.mapper.mapreport import select_from_targets
from repro.relational.constraints import CandidateKey, PrimaryKey


@lint_rule("MAP301", "dangling-table-ref", Severity.ERROR)
def check_dangling_table_ref(context):
    """A backwards-map table entry names a missing relation.

    Every key of the provenance table map must be a relation of the
    generated schema; otherwise the report documents a table the DDL
    never creates.
    """
    result = context.result
    for name in result.provenance.tables:
        if not result.relational.has_relation(name):
            yield name, (
                "backwards map documents a table that is not in the "
                "generated relational schema"
            )


@lint_rule("MAP302", "dangling-column-ref", Severity.ERROR)
def check_dangling_column_ref(context):
    """A backwards-map column entry names a missing column.

    Column provenance is keyed by ``(relation, column)``; both halves
    must resolve in the generated schema.
    """
    result = context.result
    for relation_name, column in result.provenance.columns:
        if not result.relational.has_relation(relation_name):
            yield f"{relation_name}.{column}", (
                "backwards map documents a column of a table that is "
                "not in the generated relational schema"
            )
        elif not result.relational.relation(relation_name).has_attribute(
            column
        ):
            yield f"{relation_name}.{column}", (
                "backwards map documents a column the generated "
                "relation does not have"
            )


@lint_rule("MAP303", "dangling-constraint-ref", Severity.ERROR)
def check_dangling_constraint_ref(context):
    """A backwards-map constraint entry names a missing constraint.

    Constraint provenance must point at constraints of the generated
    schema or at pseudo-constraint specifications.
    """
    result = context.result
    pseudo_names = {p.name for p in result.pseudo_constraints}
    for name in result.provenance.constraints:
        if result.relational.has_constraint(name):
            continue
        if name in pseudo_names:
            continue
        yield name, (
            "backwards map documents a constraint that is in neither "
            "the generated schema nor the pseudo constraints"
        )


@lint_rule("MAP304", "unresolved-forward-select", Severity.ERROR)
def check_unresolved_forward_select(context):
    """A forwards-map SELECT reads from a missing relation.

    The forwards map is what programmers paste into queries; a
    ``FROM`` target that is not a generated relation makes the entry
    unusable.
    """
    result = context.result
    for concept, text in result.provenance.forward:
        for target in select_from_targets(text):
            if not result.relational.has_relation(target):
                yield concept, (
                    f"forwards-map SELECT reads FROM {target!r}, "
                    "which is not a generated relation"
                )


@lint_rule("MAP305", "undocumented-relation", Severity.WARNING)
def check_undocumented_relation(context):
    """A generated relation has no backwards-map derivation.

    Every table must say which BRM concepts it derives from — the
    documentation discipline the paper insists on ("problems are due
    to undocumented decisions").
    """
    result = context.result
    for relation in result.relational.relations:
        if not result.provenance.tables.get(relation.name):
            yield relation.name, (
                "relation has no DERIVED FROM entry in the backwards "
                "map"
            )


@lint_rule("MAP306", "undocumented-constraint", Severity.WARNING)
def check_undocumented_constraint(context):
    """A non-key constraint has no backwards-map derivation.

    Key constraints of fact-born relations are structural and carry
    no single deriving concept, but every other constraint (foreign
    key, check, view constraint) encodes a specific binary-schema
    decision and must be documented.
    """
    result = context.result
    for constraint in result.relational.constraints:
        if isinstance(constraint, (PrimaryKey, CandidateKey)):
            continue
        if not result.provenance.constraints.get(constraint.name):
            yield constraint.name, (
                "constraint has no DERIVED FROM entry in the "
                "backwards map"
            )
