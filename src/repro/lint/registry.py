"""The lint-rule registry.

Every rule registers itself with a stable code, a kebab-case slug, a
fixed severity and the artifact family it examines.  The registry is
the single source of truth the engine, the CLI ``--select``/
``--ignore`` validation, the SARIF ``rules`` array and the docs
catalogue (``docs/LINTING.md``) all draw from; a meta-test asserts
the four stay in sync.

A rule's ``check`` callable receives the shared
:class:`~repro.lint.engine.LintContext` and yields ``(subject,
message)`` pairs; the engine stamps them with the rule's code and
severity so a rule cannot mis-report itself.
"""

from __future__ import annotations

import re
from collections.abc import Callable, Iterable
from dataclasses import dataclass

from repro.analyzer.diagnostics import Severity
from repro.lint.diagnostics import ARTIFACTS

#: code -> registered rule, in registration order.
REGISTRY: dict[str, LintRule] = {}

_CODE_SHAPE = re.compile(r"^(BRM0|TRC1|SQL2|MAP3|IMP4)\d\d$")


@dataclass(frozen=True)
class LintRule:
    """One registered lint rule."""

    code: str
    slug: str
    severity: Severity
    artifact: str
    summary: str
    check: Callable[..., Iterable[tuple[str, str]]]


def lint_rule(
    code: str, slug: str, severity: Severity
) -> Callable[[Callable], Callable]:
    """Register a rule function under a stable code.

    The decorated function must carry a docstring; its first line
    becomes the rule summary shown by renderers and the docs table.
    """

    def register(fn: Callable) -> Callable:
        if not _CODE_SHAPE.match(code):
            raise ValueError(f"malformed lint code {code!r}")
        if code in REGISTRY:
            raise ValueError(f"duplicate lint code {code!r}")
        if not fn.__doc__:
            raise ValueError(f"lint rule {code} needs a docstring")
        REGISTRY[code] = LintRule(
            code=code,
            slug=slug,
            severity=severity,
            artifact=ARTIFACTS[code[:3]],
            summary=fn.__doc__.strip().splitlines()[0].rstrip("."),
            check=fn,
        )
        return fn

    return register


def all_rules() -> tuple[LintRule, ...]:
    """Every registered rule, ordered by code."""
    _load_rule_modules()
    return tuple(REGISTRY[code] for code in sorted(REGISTRY))


def resolve_selectors(selectors: Iterable[str]) -> frozenset[str]:
    """Expand exact codes and code prefixes into registered codes.

    ``BRM009`` selects one rule; a prefix such as ``TRC`` or ``SQL2``
    selects the family.  Unknown selectors raise ``ValueError`` (the
    CLI turns that into a usage error, exit code 2).
    """
    _load_rule_modules()
    resolved: set[str] = set()
    for selector in selectors:
        matches = {
            code
            for code in REGISTRY
            if code == selector or code.startswith(selector)
        }
        if not matches:
            known = ", ".join(sorted(REGISTRY))
            raise ValueError(
                f"unknown lint code {selector!r}; known codes: {known}"
            )
        resolved |= matches
    return frozenset(resolved)


def _load_rule_modules() -> None:
    """Import every rule module once so the registry is complete."""
    from repro.lint import (  # noqa: F401  (import-for-registration)
        rules_implication,
        rules_map,
        rules_schema,
        rules_sql,
        rules_trace,
    )
