"""Command-line interface: ``python -m repro``.

The workbench as a tool: schemas written in the DSL are analyzed,
mapped and rendered from the shell, mirroring the engineer-facing
loop of the paper's figure 1::

    python -m repro analyze conference.ridl
    python -m repro map conference.ridl --sublinks TOGETHER --dialect sql2
    python -m repro map conference.ridl --strict        # abort on any failure
    python -m repro map conference.ridl --best-effort   # survive, report health
    python -m repro report conference.ridl --out build/
    python -m repro lint conference.ridl --format sarif > lint.sarif
    python -m repro show conference.ridl --format dot > schema.dot
    python -m repro map conference.ridl --trace trace.json
    python -m repro profile conference.ridl --pipeline advise --top-k 10
    python -m repro validate conference.ridl --backend sqlite --scale 10000
    python -m repro reverse legacy.sql --dialect oracle
    python -m repro reverse conference.ridl --fixpoint --scale 10000

``map`` prints DDL; ``report`` writes the full artifact set (DDL for
every dialect, forwards/backwards map report, transformation trace)
into a directory; ``show`` renders the conceptual schema.

``--strict`` (default) aborts the mapping session on the first failed
step; ``--best-effort`` lets the fault-tolerant session quarantine bad
rules and skip failed option phases, prints the health report, and
exits with code 5 when the result is degraded.  Exit codes are
distinct per failure class: 0 success, 1 analysis found the schema
unmappable (or ``lint`` found errors, or ``reverse`` could not lift
the DDL), 2 parse/usage errors, 3 analysis failures, 4 mapping
failures, 5 degraded best-effort success (or ``validate`` falling
back from an unavailable backend), 6 ``validate`` found the mapped
state invalid — a rule violated on a valid population, a non-empty
round-trip diff, or a non-diagonal detection matrix — or ``reverse
--fixpoint`` found a round-trip divergence.  Every argument error — argparse's own and our
option validation alike — prints a one-line message and exits 2.

``validate`` runs the empirical-losslessness harness
(:mod:`repro.executor`): it generates a seeded valid population
sized to ``--scale`` relational rows, forward-maps and bulk-loads it
on ``--backend`` (``auto`` picks DuckDB, then SQLite, then the
in-memory engine), executes every compiled lossless rule, round-trips
the state, and (unless ``--no-inject``) replays one surgical
violation per mutator kind to confirm the detection matrix is
diagonal.  ``--format json`` prints the machine-readable report.

``reverse`` walks the mapping backwards (:mod:`repro.mapper.reverse`):
it parses a relational DDL script, lifts it to a binary schema with
per-element provenance, and prints the lifted schema in the DSL; with
``--fixpoint`` it instead takes a DSL schema and asserts the
differential round-trip ``lift(emit(S))`` is a fixpoint (DDL
idempotence, structural digest, implication closure, and — with
``--scale`` — identical empirical validation).

``--trace FILE`` (on ``map``/``report``/``advise``/``lint``/
``profile``/``reverse``) records the run with the tracing layer of
:mod:`repro.observability` and writes the deterministic JSON span
tree — or, with ``--trace-format chrome``, a ``chrome://tracing``
file with real timings.  ``profile`` runs one pipeline under the
tracer and prints the top-k spans by self time plus the pipeline
counters (see ``docs/OBSERVABILITY.md``).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analyzer import analyze
from repro.dsl import parse
from repro.errors import AnalysisError, MappingError, RidlError
from repro.lint import lint_schema, render_json, render_sarif, render_text
from repro.mapper import (
    MappingOptions,
    NullPolicy,
    SublinkPolicy,
    advise,
    discover_space,
    map_schema,
)
from repro.notation import render_ascii, render_dot
from repro.observability import (
    Tracer,
    render_profile,
    to_chrome_trace,
    to_json,
)
from repro.sql import PROFILES
from repro.workloads.statistics import WorkloadProfile

#: Exit codes, one per failure class (see the module docstring).
EXIT_OK = 0
EXIT_UNMAPPABLE = 1
EXIT_USAGE = 2
EXIT_ANALYSIS = 3
EXIT_MAPPING = 4
EXIT_DEGRADED = 5
EXIT_INVALID = 6

_NULL_CHOICES = {policy.name: policy for policy in NullPolicy}
_SUBLINK_CHOICES = {policy.name: policy for policy in SublinkPolicy}


class _Parser(argparse.ArgumentParser):
    """An argument parser that reports usage errors uniformly.

    Stock argparse prints a multi-line usage block to stderr and
    exits the process; our own option validation raises
    :class:`RidlError` and prints one line.  Routing argparse's
    errors through the same exception unifies every argument error
    on a one-line message and exit code 2.
    """

    def error(self, message: str) -> None:  # type: ignore[override]
        raise RidlError(f"{self.prog}: {message}")


def build_parser() -> argparse.ArgumentParser:
    """The argument parser (exposed for tests and docs)."""
    parser = _Parser(
        prog="repro",
        description="RIDL* reproduction: analyze and map binary "
        "conceptual schemas written in the DSL.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    analyze_cmd = commands.add_parser(
        "analyze", help="run the four RIDL-A functions"
    )
    analyze_cmd.add_argument("schema", type=Path, help="DSL schema file")

    map_cmd = commands.add_parser(
        "map", help="map to a relational schema and print DDL"
    )
    map_cmd.add_argument("schema", type=Path)
    _add_option_arguments(map_cmd)
    map_cmd.add_argument(
        "--dialect",
        default="sql2",
        choices=sorted(PROFILES) + ["pseudo"],
        help="DDL dialect (default: sql2)",
    )
    _add_trace_arguments(map_cmd)

    report_cmd = commands.add_parser(
        "report", help="write DDL, map report and trace to a directory"
    )
    report_cmd.add_argument("schema", type=Path)
    _add_option_arguments(report_cmd)
    report_cmd.add_argument(
        "--out", type=Path, required=True, help="output directory"
    )
    _add_trace_arguments(report_cmd)

    advise_cmd = commands.add_parser(
        "advise",
        help="explore the mapping-option lattice and rank the designs",
    )
    advise_cmd.add_argument("schema", type=Path)
    advise_cmd.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="process-pool size (default: one per CPU; 1 = serial)",
    )
    advise_cmd.add_argument(
        "--top-k",
        type=int,
        default=5,
        metavar="K",
        help="how many ranked candidates to print (default 5)",
    )
    advise_cmd.add_argument(
        "--max-candidates",
        type=int,
        default=64,
        metavar="M",
        help="hard cap on the enumerated lattice (default 64)",
    )
    advise_cmd.add_argument(
        "--nulls-axis",
        default=None,
        metavar="P1,P2,...",
        help="null policies to explore (default: DEFAULT,"
        "NOT_IN_KEYS,NOT_ALLOWED)",
    )
    advise_cmd.add_argument(
        "--sublinks-axis",
        default=None,
        metavar="P1,P2,...",
        help="global sublink policies to explore (default: all three)",
    )
    advise_cmd.add_argument(
        "--per-sublink",
        type=int,
        default=0,
        metavar="N",
        help="also vary the policy of up to N individual sublinks",
    )
    advise_cmd.add_argument(
        "--combine-axis",
        action="append",
        default=[],
        metavar="TARGET=SOURCE",
        help="toggle combining SOURCE into TARGET (repeatable)",
    )
    advise_cmd.add_argument(
        "--omit-axis",
        action="append",
        default=[],
        metavar="TABLE",
        help="toggle omitting TABLE (repeatable; disables probing)",
    )
    advise_cmd.add_argument(
        "--rows",
        type=int,
        default=10_000,
        metavar="N",
        help="assumed instances per object type (default 10000)",
    )
    advise_cmd.add_argument(
        "--format",
        default="text",
        choices=["text", "json"],
        help="report format (default: text)",
    )
    _add_trace_arguments(advise_cmd)

    lint_cmd = commands.add_parser(
        "lint",
        help="run the static-diagnostics rules over a schema and "
        "its mapping artifacts",
    )
    lint_cmd.add_argument("schema", type=Path)
    lint_cmd.add_argument(
        "--select",
        default=None,
        metavar="CODES",
        help="comma-separated codes or prefixes to run exclusively "
        "(e.g. BRM009,TRC)",
    )
    lint_cmd.add_argument(
        "--ignore",
        default=None,
        metavar="CODES",
        help="comma-separated codes or prefixes to skip",
    )
    lint_cmd.add_argument(
        "--dialect",
        default="sql2",
        choices=sorted(PROFILES),
        help="dialect profile for the SQL2xx identifier rules "
        "(default: sql2)",
    )
    lint_cmd.add_argument(
        "--format",
        default="text",
        choices=["text", "json", "sarif"],
        help="report format (default: text)",
    )
    _add_trace_arguments(lint_cmd)

    show_cmd = commands.add_parser(
        "show", help="render the conceptual schema"
    )
    show_cmd.add_argument("schema", type=Path)
    show_cmd.add_argument(
        "--format", default="ascii", choices=["ascii", "dot"]
    )

    profile_cmd = commands.add_parser(
        "profile",
        help="run one pipeline under the tracer and print the "
        "hottest spans",
    )
    profile_cmd.add_argument("schema", type=Path)
    profile_cmd.add_argument(
        "--pipeline",
        default="map",
        choices=["map", "advise", "lint"],
        help="which pipeline to profile (default: map)",
    )
    _add_option_arguments(profile_cmd)
    profile_cmd.add_argument(
        "--dialect",
        default="sql2",
        choices=sorted(PROFILES),
        help="DDL dialect for the map/lint pipelines (default: sql2)",
    )
    profile_cmd.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="advise pipeline process-pool size (1 = serial)",
    )
    profile_cmd.add_argument(
        "--top-k",
        type=int,
        default=15,
        metavar="K",
        help="how many aggregated spans to print (default 15)",
    )
    _add_trace_arguments(profile_cmd)

    reverse_cmd = commands.add_parser(
        "reverse",
        help="lift relational DDL back to a binary schema, or check "
        "the lift/remap fixpoint on a DSL schema",
    )
    reverse_cmd.add_argument(
        "schema",
        type=Path,
        help="DDL script to lift (a DSL schema with --fixpoint)",
    )
    reverse_cmd.add_argument(
        "--dialect",
        default="sql2",
        choices=sorted(PROFILES),
        help="DDL dialect of the input, or the dialect to round-trip "
        "through under --fixpoint (default: sql2)",
    )
    reverse_cmd.add_argument(
        "--fixpoint",
        action="store_true",
        default=False,
        help="treat the input as a DSL schema: map it, lift the DDL, "
        "remap, and assert the differential fixpoint (exit 6 on "
        "divergence)",
    )
    _add_option_arguments(reverse_cmd)
    reverse_cmd.add_argument(
        "--scale",
        type=int,
        default=0,
        metavar="ROWS",
        help="with --fixpoint: also run the empirical leg, validating "
        "a population of ROWS relational rows on both the source and "
        "the lifted schema (default 0: skip)",
    )
    reverse_cmd.add_argument(
        "--seed",
        type=int,
        default=7,
        metavar="N",
        help="population seed for the empirical leg (default 7)",
    )
    reverse_cmd.add_argument(
        "--format",
        default="text",
        choices=["text", "json"],
        help="report format (default: text)",
    )
    _add_trace_arguments(reverse_cmd)

    validate_cmd = commands.add_parser(
        "validate",
        help="run the empirical-losslessness harness on an execution "
        "backend",
    )
    validate_cmd.add_argument("schema", type=Path)
    _add_option_arguments(validate_cmd)
    validate_cmd.add_argument(
        "--backend",
        default="auto",
        choices=["auto", "duckdb", "sqlite", "memory"],
        help="execution backend (auto: duckdb, then sqlite, then the "
        "in-memory engine)",
    )
    validate_cmd.add_argument(
        "--scale",
        type=int,
        default=1000,
        metavar="ROWS",
        help="target relational row count for the generated "
        "population (default 1000)",
    )
    validate_cmd.add_argument(
        "--seed",
        type=int,
        default=7,
        metavar="N",
        help="population and injection seed (default 7)",
    )
    inject = validate_cmd.add_mutually_exclusive_group()
    inject.add_argument(
        "--inject",
        dest="inject",
        action="store_true",
        default=True,
        help="plan and replay surgical violations (default)",
    )
    inject.add_argument(
        "--no-inject",
        dest="inject",
        action="store_false",
        help="skip the injection/detection experiment",
    )
    validate_cmd.add_argument(
        "--check-workers",
        type=int,
        default=1,
        metavar="N",
        help="shard the compiled checker queries across N worker "
        "processes on backends that support it (default 1: serial; "
        "the report is identical across worker counts)",
    )
    validate_cmd.add_argument(
        "--prune-implied",
        action="store_true",
        default=False,
        help="skip checker queries for rules the implication engine "
        "proved implied by other enforced rules (the report records "
        "the pruned rule names with their proofs)",
    )
    validate_cmd.add_argument(
        "--format",
        default="text",
        choices=["text", "json"],
        help="report format (default: text)",
    )
    _add_trace_arguments(validate_cmd)
    return parser


def _add_trace_arguments(command: argparse.ArgumentParser) -> None:
    command.add_argument(
        "--trace",
        type=Path,
        default=None,
        metavar="FILE",
        help="record the run and write the trace to FILE",
    )
    command.add_argument(
        "--trace-format",
        default="spans",
        choices=["spans", "chrome"],
        help="trace file format: deterministic JSON span tree or "
        "chrome://tracing events (default: spans)",
    )


def _add_option_arguments(command: argparse.ArgumentParser) -> None:
    command.add_argument(
        "--nulls",
        default="DEFAULT",
        choices=sorted(_NULL_CHOICES),
        help="null-value option (section 4.2.1)",
    )
    command.add_argument(
        "--sublinks",
        default="SEPARATE",
        choices=sorted(_SUBLINK_CHOICES),
        help="sublink mapping option (section 4.2.2)",
    )
    command.add_argument(
        "--sublink-override",
        action="append",
        default=[],
        metavar="SUBLINK=POLICY",
        help="per-sublink exception, e.g. Invited_IS_Paper=INDICATOR",
    )
    command.add_argument(
        "--omit",
        action="append",
        default=[],
        metavar="TABLE",
        help="omit a generated table (mapping option 5)",
    )
    modes = command.add_mutually_exclusive_group()
    modes.add_argument(
        "--strict",
        dest="mode",
        action="store_const",
        const="strict",
        default="strict",
        help="abort the session on the first failed step (default)",
    )
    modes.add_argument(
        "--best-effort",
        dest="mode",
        action="store_const",
        const="best-effort",
        help="quarantine bad rules, skip failed option phases, "
        "report health (exit 5 when degraded)",
    )


def _options_from(namespace: argparse.Namespace) -> MappingOptions:
    overrides = []
    for item in namespace.sublink_override:
        name, _, policy = item.partition("=")
        if policy not in _SUBLINK_CHOICES:
            raise RidlError(
                f"unknown sublink policy {policy!r} in override {item!r}"
            )
        overrides.append((name, _SUBLINK_CHOICES[policy]))
    return MappingOptions(
        null_policy=_NULL_CHOICES[namespace.nulls],
        sublink_policy=_SUBLINK_CHOICES[namespace.sublinks],
        sublink_overrides=tuple(overrides),
        omit_tables=tuple(namespace.omit),
    )


def _load(path: Path):
    return parse(path.read_text())


def main(argv: list[str] | None = None, out=None) -> int:
    """Entry point; returns the process exit code."""
    out = out or sys.stdout
    parser = build_parser()
    try:
        namespace = parser.parse_args(argv)
        trace_path = getattr(namespace, "trace", None)
        if trace_path is None and namespace.command != "profile":
            return _dispatch(namespace, out)
        tracer = Tracer(f"repro {namespace.command}")
        try:
            with tracer.activate():
                return _dispatch(namespace, out, tracer=tracer)
        finally:
            # Written even when a later handler turns the failure
            # into an exit code — a trace of a failed run is still a
            # trace.
            if trace_path is not None:
                _write_trace(tracer, trace_path, namespace.trace_format)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=out)
        return EXIT_USAGE
    except AnalysisError as exc:
        print(f"error: {exc}", file=out)
        return EXIT_ANALYSIS
    except MappingError as exc:
        print(f"error: {exc}", file=out)
        return EXIT_MAPPING
    except RidlError as exc:
        print(f"error: {exc}", file=out)
        return EXIT_USAGE
    except BrokenPipeError:  # pragma: no cover - e.g. `| head`
        return EXIT_OK
    return EXIT_USAGE  # pragma: no cover - argparse enforces the commands


def _dispatch(namespace: argparse.Namespace, out, tracer=None) -> int:
    """Run one parsed command; exceptions propagate to ``main``."""
    if namespace.command == "analyze":
        report = analyze(_load(namespace.schema))
        print(report.render(), file=out)
        return EXIT_OK if report.is_mappable else EXIT_UNMAPPABLE
    if namespace.command == "map":
        result = map_schema(
            _load(namespace.schema),
            _options_from(namespace),
            robustness=namespace.mode,
        )
        print(result.sql(namespace.dialect), file=out)
        return _finish_mapping(result, out)
    if namespace.command == "report":
        result = map_schema(
            _load(namespace.schema),
            _options_from(namespace),
            robustness=namespace.mode,
        )
        written = write_artifacts(result, namespace.out)
        for path in written:
            print(path, file=out)
        return _finish_mapping(result, out)
    if namespace.command == "advise":
        return _run_advise(namespace, out)
    if namespace.command == "lint":
        return _run_lint(namespace, out)
    if namespace.command == "show":
        schema = _load(namespace.schema)
        renderer = render_dot if namespace.format == "dot" else render_ascii
        print(renderer(schema), file=out)
        return EXIT_OK
    if namespace.command == "profile":
        return _run_profile(namespace, out, tracer)
    if namespace.command == "validate":
        return _run_validate(namespace, out)
    if namespace.command == "reverse":
        return _run_reverse(namespace, out)
    raise RidlError(f"unknown command {namespace.command!r}")


def _write_trace(tracer, path: Path, trace_format: str) -> None:
    if trace_format == "chrome":
        text = to_chrome_trace(tracer)
    else:
        text = to_json(tracer, deterministic=True)
    path.write_text(text)


def _run_profile(namespace: argparse.Namespace, out, tracer) -> int:
    """The ``profile`` subcommand: run a pipeline, print hot spans."""
    if namespace.pipeline == "map":
        result = map_schema(
            _load(namespace.schema),
            _options_from(namespace),
            robustness=namespace.mode,
        )
        result.sql(namespace.dialect)
    elif namespace.pipeline == "advise":
        schema = _load(namespace.schema)
        advise(
            schema, discover_space(schema), workers=namespace.workers
        )
    else:
        source = namespace.schema.read_text()
        lint_schema(
            parse(source), source=source, dialect=namespace.dialect
        )
    print(render_profile(tracer, top_k=namespace.top_k), file=out)
    return EXIT_OK


def _run_validate(namespace: argparse.Namespace, out) -> int:
    """The ``validate`` subcommand: 0 ok, 5 fallback, 6 invalid."""
    from repro.executor import run_validation

    report = run_validation(
        _load(namespace.schema),
        _options_from(namespace),
        backend=namespace.backend,
        scale=namespace.scale,
        seed=namespace.seed,
        inject=namespace.inject,
        check_workers=namespace.check_workers,
        prune_implied=namespace.prune_implied,
    )
    if namespace.format == "json":
        out.write(report.to_json())
    else:
        print(report.render(), file=out)
    if not report.ok:
        return EXIT_INVALID
    if (
        report.backend_requested != "auto"
        and report.backend_used != report.backend_requested
    ):
        # The harness ran, but not where the user asked it to.
        return EXIT_DEGRADED
    return EXIT_OK


def _run_reverse(namespace: argparse.Namespace, out) -> int:
    """The ``reverse`` subcommand: lift DDL, or assert the fixpoint.

    Exit codes: 0 lifted (or fixpoint holds), 1 the DDL parsed but
    could not be lifted, 2 parse/usage errors, 6 fixpoint divergence.
    """
    import json as _json

    from repro.dsl import to_dsl
    from repro.mapper.reverse import LiftError, check_fixpoint, lift_ddl

    if namespace.fixpoint:
        report = check_fixpoint(
            _load(namespace.schema),
            _options_from(namespace),
            dialect=namespace.dialect,
            empirical_scale=namespace.scale,
            seed=namespace.seed,
        )
        if namespace.format == "json":
            out.write(_json.dumps(report.as_dict(), indent=2) + "\n")
        else:
            print(report.describe(), file=out)
        return EXIT_OK if report.ok else EXIT_INVALID
    text = namespace.schema.read_text()
    try:
        lifted = lift_ddl(text, namespace.dialect)
    except LiftError as exc:
        print(f"error: {exc}", file=out)
        return EXIT_UNMAPPABLE
    if namespace.format == "json":
        payload = lifted.report.as_dict()
        payload["dsl"] = to_dsl(lifted.schema)
        out.write(_json.dumps(payload, indent=2) + "\n")
    else:
        print(to_dsl(lifted.schema), file=out)
        print(lifted.report.describe(), file=out)
    return EXIT_OK


def _policy_axis(text, choices, default):
    if text is None:
        return default
    axis = []
    for name in text.split(","):
        name = name.strip()
        if name not in choices:
            raise RidlError(
                f"unknown policy {name!r}; choose from "
                f"{', '.join(sorted(choices))}"
            )
        axis.append(choices[name])
    return tuple(axis)


def _run_advise(namespace: argparse.Namespace, out) -> int:
    """The ``advise`` subcommand: rank the option lattice's designs."""
    from dataclasses import replace

    schema = _load(namespace.schema)
    space = discover_space(
        schema,
        null_policies=_policy_axis(
            namespace.nulls_axis,
            _NULL_CHOICES,
            (NullPolicy.DEFAULT, NullPolicy.NOT_IN_KEYS, NullPolicy.NOT_ALLOWED),
        ),
        sublink_policies=_policy_axis(
            namespace.sublinks_axis, _SUBLINK_CHOICES, tuple(SublinkPolicy)
        ),
        max_override_axes=namespace.per_sublink,
        # Explicit omit axes replace the probed defaults.
        max_omit_toggles=0 if namespace.omit_axis else 2,
        max_candidates=namespace.max_candidates,
    )
    combines = []
    for item in namespace.combine_axis:
        target, sep, source = item.partition("=")
        if not sep or not target or not source:
            raise RidlError(
                f"bad --combine-axis {item!r}; expected TARGET=SOURCE"
            )
        combines.append((target, source))
    if combines or namespace.omit_axis:
        space = replace(
            space,
            combine_toggles=space.combine_toggles + tuple(combines),
            omit_toggles=space.omit_toggles + tuple(namespace.omit_axis),
        )
    report = advise(
        schema,
        space,
        workers=namespace.workers,
        profile=WorkloadProfile(default_instances=namespace.rows),
    )
    if namespace.format == "json":
        out.write(report.to_json(namespace.top_k))
    else:
        print(report.render(namespace.top_k), file=out)
    return EXIT_OK if report.winner is not None else EXIT_MAPPING


def _split_codes(text: str | None) -> tuple[str, ...]:
    if text is None:
        return ()
    return tuple(
        token.strip().upper() for token in text.split(",") if token.strip()
    )


def _run_lint(namespace: argparse.Namespace, out) -> int:
    """The ``lint`` subcommand: 0 clean, 1 errors, 2 usage."""
    source = namespace.schema.read_text()
    schema = parse(source)
    try:
        report = lint_schema(
            schema,
            source=source,
            dialect=namespace.dialect,
            select=_split_codes(namespace.select),
            ignore=_split_codes(namespace.ignore),
        )
    except ValueError as exc:
        # Unknown --select/--ignore/pragma codes are usage errors,
        # reported exactly like any other bad argument.
        raise RidlError(str(exc)) from None
    if namespace.format == "json":
        out.write(render_json(report))
    elif namespace.format == "sarif":
        out.write(
            render_sarif(report, artifact_uri=namespace.schema.as_posix())
        )
    else:
        print(render_text(report), file=out)
    return report.exit_code


def _finish_mapping(result, out) -> int:
    """Surface the session health; degraded best-effort runs exit 5."""
    if result.health.ok:
        return EXIT_OK
    print(result.health_report(), file=out)
    return EXIT_DEGRADED


def write_artifacts(result, directory: Path) -> list[Path]:
    """Write the full artifact set of a mapping session.

    One DDL file per dialect, the bidirectional map report, and the
    transformation trace — the documentation discipline the paper
    insists on ("undocumented decisions" being a root cause of schema
    misuse).
    """
    directory.mkdir(parents=True, exist_ok=True)
    written = []
    for dialect in sorted(PROFILES):
        path = directory / f"schema.{dialect}.sql"
        path.write_text(result.sql(dialect))
        written.append(path)
    map_path = directory / "map_report.txt"
    map_path.write_text(result.map_report())
    written.append(map_path)
    trace_path = directory / "trace.txt"
    trace_path.write_text(result.trace_report() + "\n")
    written.append(trace_path)
    health_path = directory / "health.txt"
    health_path.write_text(result.health_report() + "\n")
    written.append(health_path)
    return written


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
