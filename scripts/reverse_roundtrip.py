#!/usr/bin/env python
"""Run the differential fixpoint harness over every bundled schema.

The CI ``reverse-roundtrip`` job runs this script after the fuzzer
leg.  For each target schema — every ``examples/*.ridl`` file, the
in-memory CRIS case study, and the industrial-scale generated schema
— it checks the reverse-engineering fixpoint across **all** dialect
profiles: the lifted schema remaps to byte-identical DDL, carries the
same structural signature, and saturates to the same implication
closure.  CRIS additionally runs the empirical leg (1e4-row executor
populations on source and lift must validate identically).

A second pass lints every lifted schema: reverse engineering must
produce schemas the linter considers deployable (zero error-severity
findings).

Locally::

    PYTHONPATH=src python scripts/reverse_roundtrip.py
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO / "src"))

from repro.cris import cris_schema  # noqa: E402
from repro.dsl import parse  # noqa: E402
from repro.lint import lint_schema  # noqa: E402
from repro.mapper import MappingOptions, check_fixpoint, map_schema  # noqa: E402
from repro.mapper.reverse import lift_ddl  # noqa: E402
from repro.sql.dialects import PROFILES  # noqa: E402
from repro.workloads import SchemaShape, generate_schema  # noqa: E402

# Mirrors benchmarks/bench_industrial_scale.py (785 entities, 134
# relations at seed 1989).
INDUSTRIAL_SHAPE = SchemaShape(
    entity_types=90,
    attributes_per_entity=(4, 9),
    optional_ratio=0.5,
    rich_constraints=True,
    exclusion_groups=5,
    subset_ratio=0.9,
    value_ratio=0.5,
    alternate_identifier_ratio=0.3,
    many_to_many_per_entity=0.6,
)


def targets():
    for path in sorted((REPO / "examples").glob("*.ridl")):
        yield path.relative_to(REPO).as_posix(), parse(path.read_text())
    yield "cris", cris_schema()
    yield "industrial(seed=1989)", generate_schema(INDUSTRIAL_SHAPE, seed=1989)


def fixpoint_pass() -> int:
    failures = 0
    for label, schema in targets():
        empirical = 10_000 if label == "cris" else 0
        for dialect in sorted(PROFILES):
            report = check_fixpoint(
                schema,
                MappingOptions(),
                dialect=dialect,
                empirical_scale=empirical,
                seed=7,
            )
            legs = " ".join(
                f"{leg.name}={'ok' if leg.ok else 'FAIL'}"
                for leg in report.legs
            )
            status = "PASS" if report.ok else "DIVERGED"
            print(f"{label} [{dialect}]: {status}  {legs}")
            if not report.ok:
                print(report.describe())
                failures += 1
            empirical = 0  # the executor leg is dialect-independent
    return failures


def lint_pass() -> int:
    """Lifted schemas must lint clean — zero error-severity findings."""
    print("--- lint of lifted schemas")
    errors = 0
    for label, schema in targets():
        ddl = map_schema(schema, MappingOptions()).sql("sql2")
        lifted = lift_ddl(ddl)
        report = lint_schema(lifted.schema)
        print(
            f"{label}: {len(report.errors)} error(s), "
            f"{len(report.warnings)} warning(s)"
        )
        for finding in report.errors:
            print(f"  {finding.code}: {finding.message}")
        errors += len(report.errors)
    return errors


def main() -> int:
    failures = fixpoint_pass()
    failures += lint_pass()
    if failures:
        print(f"FAILED: {failures} divergence(s)/error(s)")
        return 1
    print("OK: every bundled schema is a reverse-engineering fixpoint")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
