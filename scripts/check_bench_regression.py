#!/usr/bin/env python
"""Gate on a committed benchmark baseline.

Compares a freshly produced ``BENCH_*.json`` against the committed
baseline and fails (exit 1) when the guarded wall time regressed by
more than the threshold.  The wall-time key is configurable so the
same gate covers every benchmark that records one:

- ``BENCH_industrial_scale.json`` — ``guarded_map_schema_wall_s``
  (the default)
- ``BENCH_option_space.json`` — ``advisor_wall_s``

Raw wall times are not comparable across differently-powered
machines, so both runs carry a ``calibration_s`` figure (a fixed
pure-Python workload timed in the same process) and the gate compares
the *calibrated* ratio ``wall / calibration``.  When either file or
either figure is missing the gate skips (exit 0) — a missing baseline
is the bootstrap case, not a failure.

Usage:
    python scripts/check_bench_regression.py \
        --baseline BENCH_industrial_scale.json \
        --current /tmp/BENCH_industrial_scale.json \
        [--wall-key guarded_map_schema_wall_s] [--threshold 0.25]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_WALL_KEY = "guarded_map_schema_wall_s"
CALIBRATION_KEY = "calibration_s"


def _load_metrics(path: Path, wall_key: str) -> dict | None:
    if not path.exists():
        return None
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None
    for block in payload.get("blocks", ()):
        data = block.get("data", {})
        if wall_key in data and CALIBRATION_KEY in data:
            return data
    return None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", type=Path, required=True)
    parser.add_argument("--current", type=Path, required=True)
    parser.add_argument(
        "--wall-key",
        default=DEFAULT_WALL_KEY,
        help=f"data key holding the wall time (default {DEFAULT_WALL_KEY})",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="maximum allowed fractional regression (default 0.25)",
    )
    args = parser.parse_args(argv)

    baseline = _load_metrics(args.baseline, args.wall_key)
    current = _load_metrics(args.current, args.wall_key)
    if baseline is None:
        print(f"no usable baseline at {args.baseline}; skipping gate")
        return 0
    if current is None:
        print(f"no usable current run at {args.current}; skipping gate")
        return 0

    baseline_score = baseline[args.wall_key] / baseline[CALIBRATION_KEY]
    current_score = current[args.wall_key] / current[CALIBRATION_KEY]
    regression = current_score / baseline_score - 1.0
    print(
        f"baseline: {baseline[args.wall_key]:.3f}s wall / "
        f"{baseline[CALIBRATION_KEY]:.4f}s calibration = "
        f"{baseline_score:.2f}"
    )
    print(
        f"current:  {current[args.wall_key]:.3f}s wall / "
        f"{current[CALIBRATION_KEY]:.4f}s calibration = "
        f"{current_score:.2f}"
    )
    print(f"calibrated change: {regression:+.1%} (threshold +{args.threshold:.0%})")
    if regression > args.threshold:
        print(f"FAIL: {args.wall_key} regressed past the threshold")
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
