#!/usr/bin/env python
"""Gate on the committed industrial-scale benchmark baseline.

Compares a freshly produced ``BENCH_industrial_scale.json`` against
the committed baseline and fails (exit 1) when the guarded
``map_schema`` wall time regressed by more than the threshold.

Raw wall times are not comparable across differently-powered
machines, so both runs carry a ``calibration_s`` figure (a fixed
pure-Python workload timed in the same process) and the gate compares
the *calibrated* ratio ``wall / calibration``.  When either file or
either figure is missing the gate skips (exit 0) — a missing baseline
is the bootstrap case, not a failure.

Usage:
    python scripts/check_bench_regression.py \
        --baseline BENCH_industrial_scale.json \
        --current /tmp/BENCH_industrial_scale.json \
        [--threshold 0.25]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

WALL_KEY = "guarded_map_schema_wall_s"
CALIBRATION_KEY = "calibration_s"


def _load_metrics(path: Path) -> dict | None:
    if not path.exists():
        return None
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None
    for block in payload.get("blocks", ()):
        data = block.get("data", {})
        if WALL_KEY in data and CALIBRATION_KEY in data:
            return data
    return None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", type=Path, required=True)
    parser.add_argument("--current", type=Path, required=True)
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="maximum allowed fractional regression (default 0.25)",
    )
    args = parser.parse_args(argv)

    baseline = _load_metrics(args.baseline)
    current = _load_metrics(args.current)
    if baseline is None:
        print(f"no usable baseline at {args.baseline}; skipping gate")
        return 0
    if current is None:
        print(f"no usable current run at {args.current}; skipping gate")
        return 0

    baseline_score = baseline[WALL_KEY] / baseline[CALIBRATION_KEY]
    current_score = current[WALL_KEY] / current[CALIBRATION_KEY]
    regression = current_score / baseline_score - 1.0
    print(
        f"baseline: {baseline[WALL_KEY]:.3f}s wall / "
        f"{baseline[CALIBRATION_KEY]:.4f}s calibration = "
        f"{baseline_score:.2f}"
    )
    print(
        f"current:  {current[WALL_KEY]:.3f}s wall / "
        f"{current[CALIBRATION_KEY]:.4f}s calibration = "
        f"{current_score:.2f}"
    )
    print(f"calibrated change: {regression:+.1%} (threshold +{args.threshold:.0%})")
    if regression > args.threshold:
        print("FAIL: bench_industrial_scale regressed past the threshold")
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
