#!/usr/bin/env python
"""Gate on a committed benchmark baseline.

Compares a freshly produced ``BENCH_*.json`` against the committed
baseline and fails (exit 1) when the guarded wall time regressed by
more than the threshold.  The wall-time key is configurable so the
same gate covers every benchmark that records one:

- ``BENCH_industrial_scale.json`` — ``guarded_map_schema_wall_s``
  (the default)
- ``BENCH_option_space.json`` — ``advisor_wall_s``

Raw wall times are not comparable across differently-powered
machines, so both runs carry a ``calibration_s`` figure (a fixed
pure-Python workload timed in the same process) and the gate compares
the *calibrated* ratio ``wall / calibration``.  When either file or
either figure is missing the gate skips (exit 0) — a missing baseline
is the bootstrap case, not a failure.

Usage:
    python scripts/check_bench_regression.py \
        --baseline BENCH_industrial_scale.json \
        --current /tmp/BENCH_industrial_scale.json \
        [--wall-key guarded_map_schema_wall_s] [--threshold 0.25]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_WALL_KEY = "guarded_map_schema_wall_s"
CALIBRATION_KEY = "calibration_s"


def _load_metrics(path: Path, wall_key: str) -> dict | None:
    if not path.exists():
        return None
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None
    for block in payload.get("blocks", ()):
        data = block.get("data", {})
        if wall_key in data and CALIBRATION_KEY in data:
            return data
    return None


def _gate_key(
    baseline_path: Path, current_path: Path, wall_key: str, threshold: float
) -> bool:
    """Gate one wall-time key; returns False on regression."""
    baseline = _load_metrics(baseline_path, wall_key)
    current = _load_metrics(current_path, wall_key)
    if baseline is None:
        print(f"[{wall_key}] no usable baseline at {baseline_path}; skipping")
        return True
    if current is None:
        print(f"[{wall_key}] no usable current run at {current_path}; skipping")
        return True

    baseline_score = baseline[wall_key] / baseline[CALIBRATION_KEY]
    current_score = current[wall_key] / current[CALIBRATION_KEY]
    regression = current_score / baseline_score - 1.0
    print(
        f"[{wall_key}] baseline: {baseline[wall_key]:.3f}s wall / "
        f"{baseline[CALIBRATION_KEY]:.4f}s calibration = "
        f"{baseline_score:.2f}"
    )
    print(
        f"[{wall_key}] current:  {current[wall_key]:.3f}s wall / "
        f"{current[CALIBRATION_KEY]:.4f}s calibration = "
        f"{current_score:.2f}"
    )
    print(
        f"[{wall_key}] calibrated change: {regression:+.1%} "
        f"(threshold +{threshold:.0%})"
    )
    if regression > threshold:
        print(f"FAIL: {wall_key} regressed past the threshold")
        return False
    print(f"[{wall_key}] OK")
    return True


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", type=Path, required=True)
    parser.add_argument("--current", type=Path, required=True)
    parser.add_argument(
        "--wall-key",
        dest="wall_keys",
        action="append",
        help=(
            "data key holding a wall time; repeatable to gate several "
            f"keys in one run (default {DEFAULT_WALL_KEY})"
        ),
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="maximum allowed fractional regression (default 0.25)",
    )
    args = parser.parse_args(argv)

    wall_keys = args.wall_keys or [DEFAULT_WALL_KEY]
    ok = all(
        # Evaluate every key even after a failure so the log shows the
        # full picture, not just the first regression.
        [
            _gate_key(args.baseline, args.current, key, args.threshold)
            for key in wall_keys
        ]
    )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
