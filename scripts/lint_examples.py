#!/usr/bin/env python
"""Lint the bundled examples and the CRIS mapping output.

The CI ``example-lint`` job runs this script, uploads the SARIF
files it writes, and fails when any target yields an error-severity
finding.  Locally::

    PYTHONPATH=src python scripts/lint_examples.py --out build/lint

Targets: every ``examples/*.ridl`` file (suppression pragmas in the
source are honoured) plus the in-memory CRIS case-study schema,
linted together with its default mapping result across all dialect
profiles.

A second pass runs the static implication engine
(``repro.analyzer.implication``) over every target and gates on
satisfiability: a bundled schema with a provable contradiction —
a forced-empty object type — fails the job.  The ``IMP4xx``
findings themselves already ride in the SARIF output of the lint
pass.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO / "src"))

from repro.analyzer.implication import check_implications  # noqa: E402
from repro.cris import cris_schema  # noqa: E402
from repro.dsl import parse  # noqa: E402
from repro.lint import lint_schema, render_sarif, render_text  # noqa: E402
from repro.mapper import MappingOptions, map_schema  # noqa: E402
from repro.sql.dialects import PROFILES  # noqa: E402


def lint_ridl_file(path: Path, out_dir: Path) -> int:
    source = path.read_text()
    report = lint_schema(parse(source), source=source)
    sarif_path = out_dir / f"{path.stem}.sarif"
    sarif_path.write_text(
        render_sarif(report, artifact_uri=path.relative_to(REPO).as_posix())
    )
    print(f"--- {path.relative_to(REPO)}")
    print(render_text(report))
    return len(report.errors)


def lint_cris_mapping(out_dir: Path) -> int:
    schema = cris_schema()
    result = map_schema(schema, MappingOptions())
    errors = 0
    for dialect in sorted(PROFILES):
        report = lint_schema(schema, result=result, dialect=dialect)
        sarif_path = out_dir / f"cris-{dialect}.sarif"
        sarif_path.write_text(render_sarif(report))
        print(f"--- CRIS mapping ({dialect})")
        print(render_text(report))
        errors += len(report.errors)
    return errors


def implication_pass() -> int:
    """Run the implication engine over every target; count
    contradictions (each one fails the job)."""
    targets = [("cris", cris_schema())]
    for path in sorted((REPO / "examples").glob("*.ridl")):
        targets.append((path.relative_to(REPO).as_posix(), parse(path.read_text())))
    contradictions = 0
    print("--- implication & satisfiability pass")
    for label, schema in targets:
        result = check_implications(schema)
        print(
            f"{label}: {len(result.implied)} implied, "
            f"{len(result.forced_empty)} forced-empty, "
            f"{len(result.contradictions)} contradiction(s)"
        )
        for verdict in result.contradictions:
            print(f"  CONTRADICTION {verdict.subject}:")
            print("    " + verdict.proof.render_inline())
        contradictions += len(result.contradictions)
    return contradictions


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out",
        type=Path,
        default=REPO / "build" / "lint",
        help="directory for the SARIF files (default: build/lint)",
    )
    namespace = parser.parse_args(argv)
    namespace.out.mkdir(parents=True, exist_ok=True)

    errors = 0
    for path in sorted((REPO / "examples").glob("*.ridl")):
        errors += lint_ridl_file(path, namespace.out)
    errors += lint_cris_mapping(namespace.out)
    errors += implication_pass()

    if errors:
        print(f"FAILED: {errors} error-severity finding(s)")
        return 1
    print("OK: zero error-severity findings, all targets satisfiable")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
