"""The parallel mapping-option advisor."""

import pytest

from repro.cris import cris_schema, figure6_schema
from repro.mapper import (
    MappingOptions,
    NullPolicy,
    OptionSpace,
    SublinkPolicy,
    advise,
    map_from_prefix,
    map_prefix,
    map_schema,
    plan_from_prefix,
    score_plan,
)
from repro.mapper.advisor import resolve_workers
from repro.workloads.statistics import WorkloadProfile, plan_statistics


@pytest.fixture(scope="module")
def schema():
    return figure6_schema()


SMALL_SPACE = OptionSpace(
    null_policies=(NullPolicy.DEFAULT, NullPolicy.NOT_IN_KEYS),
    sublink_policies=(SublinkPolicy.SEPARATE, SublinkPolicy.TOGETHER),
    omit_toggles=("Invited_Paper",),
)


class TestPrefixSeam:
    def test_forked_suffix_equals_direct_mapping(self, schema):
        options = MappingOptions(
            null_policy=NullPolicy.NOT_IN_KEYS,
            combine_tables=(("Paper", "Program_Paper"),),
        )
        prefix = map_prefix(schema, options)
        forked = map_from_prefix(prefix, options)
        direct = map_schema(schema, options)
        assert forked.sql("sql2") == direct.sql("sql2")
        assert {r.name for r in forked.relational.relations} == {
            r.name for r in direct.relational.relations
        }

    def test_one_prefix_many_suffixes(self, schema):
        base = MappingOptions(null_policy=NullPolicy.NOT_IN_KEYS)
        prefix = map_prefix(schema, base)
        plain = map_from_prefix(prefix, base)
        omitted = map_from_prefix(
            prefix, base.with_overrides(omit_tables=("Invited_Paper",))
        )
        names = {r.name for r in plain.relational.relations}
        assert "Invited_Paper" in names
        assert "Invited_Paper" not in {
            r.name for r in omitted.relational.relations
        }
        # The prefix is not consumed: a third fork still works.
        again = map_from_prefix(prefix, base)
        assert again.sql("sql2") == plain.sql("sql2")

    def test_mismatched_prefix_refused(self, schema):
        from repro.errors import MappingError

        prefix = map_prefix(schema, MappingOptions())
        with pytest.raises(MappingError, match="prefix"):
            map_from_prefix(
                prefix,
                MappingOptions(sublink_policy=SublinkPolicy.TOGETHER),
            )

    def test_plan_from_prefix_matches_materialized_plan(self, schema):
        options = MappingOptions(omit_tables=("Invited_Paper",))
        prefix = map_prefix(schema, options)
        plan, health = plan_from_prefix(prefix, options)
        full = map_from_prefix(prefix, options)
        assert sorted(plan.plans) == sorted(full.plan.plans)
        assert health.ok


class TestScoring:
    def test_score_components(self, schema):
        prefix = map_prefix(schema, MappingOptions())
        plan, _ = plan_from_prefix(prefix)
        score = score_plan(plan)
        assert score.tables == len(plan.plans)
        assert score.storage_pages > 0
        assert score.entity_fetch_pages > 0
        assert score.total > 0

    def test_fragmentation_scores_worse(self, schema):
        """NULL NOT ALLOWED splits optional facts into satellites —
        the paper's 'large number of small tables' — which must cost
        more to fetch an entity from."""
        compact = plan_from_prefix(
            map_prefix(schema, MappingOptions())
        )[0]
        fragmented = plan_from_prefix(
            map_prefix(
                schema,
                MappingOptions(null_policy=NullPolicy.NOT_ALLOWED),
            )
        )[0]
        assert (
            score_plan(fragmented).entity_fetch_pages
            > score_plan(compact).entity_fetch_pages
        )
        assert score_plan(fragmented).tables > score_plan(compact).tables

    def test_profile_drives_row_estimates(self, schema):
        prefix = map_prefix(schema, MappingOptions())
        plan, _ = plan_from_prefix(prefix)
        small = plan_statistics(plan, WorkloadProfile(default_instances=100))
        large = plan_statistics(
            plan, WorkloadProfile(default_instances=1_000_000)
        )
        assert small.row_count("Paper") == 100
        assert large.row_count("Paper") == 1_000_000
        assert (
            score_plan(plan, WorkloadProfile(default_instances=1_000_000)).total
            > score_plan(plan, WorkloadProfile(default_instances=100)).total
        )


class TestAdvise:
    def test_ranked_report(self, schema):
        report = advise(schema, SMALL_SPACE, workers=1)
        assert len(report.ranked) == 8  # 2 nulls x 2 sublinks x omit on/off
        assert report.prefix_groups == 4
        totals = [o.score.total for o in report.ranked if o.score]
        assert totals == sorted(totals)
        assert report.winner is report.ranked[0]
        assert report.winner_options is not None

    def test_serial_and_parallel_reports_identical(self, schema):
        serial = advise(schema, SMALL_SPACE, workers=1)
        parallel = advise(schema, SMALL_SPACE, workers=2)
        assert serial.to_json() == parallel.to_json()
        assert serial.render() == parallel.render()

    def test_failed_candidates_reported_not_raised(self, schema):
        space = OptionSpace(
            null_policies=(NullPolicy.DEFAULT,),
            sublink_policies=(SublinkPolicy.SEPARATE,),
            combine_toggles=(("Paper", "Nope"),),
        )
        report = advise(schema, space, workers=1)
        assert len(report.ranked) == 2
        assert len(report.failures) == 1
        failed = report.failures[0]
        assert "Nope" in failed.error
        assert failed is report.ranked[-1]  # failures rank last
        assert report.winner is not None  # the clean corner still wins

    def test_prune_shrinks_exploration(self, schema):
        report = advise(
            schema,
            SMALL_SPACE,
            workers=1,
            prune=lambda c: not c.omit_tables,
        )
        assert len(report.ranked) == 4
        assert all(not o.options.omit_tables for o in report.ranked)

    def test_winner_options_map_cleanly(self, schema):
        report = advise(schema, SMALL_SPACE, workers=1)
        result = map_schema(schema, report.winner_options)
        assert result.health.ok
        assert (
            len(result.relational.relations) == report.winner.score.tables
        )

    def test_health_carried_per_candidate(self, schema):
        # Under TOGETHER the Invited_Paper relation is folded away, so
        # the omit toggle legitimately fails those corners.
        report = advise(schema, SMALL_SPACE, workers=1)
        scored = [o for o in report.ranked if not o.failed]
        assert scored
        for outcome in scored:
            assert outcome.health is not None
            assert outcome.health.ok
            assert "materialize" not in outcome.health.completed_phases
        for outcome in report.failures:
            assert outcome.health is None
            assert "Invited_Paper" in outcome.error

    def test_implied_constraint_counts_surface(self, schema):
        report = advise(schema, SMALL_SPACE, workers=1)
        for outcome in report.ranked:
            if outcome.failed:
                assert outcome.implied_constraints is None
            else:
                assert isinstance(outcome.implied_constraints, int)
                assert outcome.implied_constraints >= 0
            assert "implied_constraints" in outcome.as_dict()
        assert "impl" in report.render()

    def test_json_shape(self, schema):
        import json

        report = advise(schema, SMALL_SPACE, workers=1)
        payload = json.loads(report.to_json(top_k=3))
        assert payload["candidates"] == 8
        assert payload["prefix_groups"] == 4
        assert len(payload["ranked"]) == 3
        assert payload["ranked"][0]["rank"] == 1
        assert payload["winner"] == report.winner.label

    def test_discovered_space_on_cris(self):
        schema = cris_schema()
        report = advise(schema, workers=1)
        assert report.winner is not None
        # 3 nulls x 3 sublinks prefixes, omit toggles fan the rest out.
        assert report.prefix_groups == 9
        assert len(report.ranked) == 36


class TestResolveWorkers:
    def test_explicit(self):
        assert resolve_workers(4, groups=8) == 4

    def test_capped_by_groups(self):
        assert resolve_workers(8, groups=3) == 3

    def test_floor_of_one(self):
        assert resolve_workers(0, groups=5) == 1
        assert resolve_workers(None, groups=0) == 1

    def test_auto_uses_cpu_count(self, monkeypatch):
        monkeypatch.setattr("os.cpu_count", lambda: 6)
        assert resolve_workers(None, groups=100) == 6
