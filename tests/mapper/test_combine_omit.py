"""Mapping options 4 and 5: combining and omitting tables."""

import pytest

from repro.brm import SchemaBuilder, char, numeric
from repro.cris import figure6_population, figure6_schema
from repro.errors import MappingError
from repro.mapper import MappingOptions, NullPolicy, map_schema


class TestCombineSatellite:
    def schema(self):
        b = SchemaBuilder("s")
        b.nolot("Paper").lot("Paper_Id", char(6)).lot_nolot("Date", char(10))
        b.identifier("Paper", "Paper_Id")
        b.attribute("Paper", "Date", fact="submission")  # optional
        return b.build()

    def test_combine_undoes_satellite_split(self):
        options = MappingOptions(
            null_policy=NullPolicy.NOT_ALLOWED,
            combine_tables=(("Paper", "Paper_submission"),),
        )
        result = map_schema(self.schema(), options)
        names = {r.name for r in result.relational.relations}
        assert names == {"Paper"}
        paper = result.relational.relation("Paper")
        assert paper.attribute("Date_of").nullable

    def test_combined_round_trip(self):
        from repro.brm import Population

        schema = self.schema()
        options = MappingOptions(
            null_policy=NullPolicy.NOT_ALLOWED,
            combine_tables=(("Paper", "Paper_submission"),),
        )
        result = map_schema(schema, options)
        population = Population(schema)
        population.add_fact("Paper_has_Paper_Id", "p1", "P1")
        population.add_fact("submission", "p1", "1988-10-01")
        population.add_fact("Paper_has_Paper_Id", "p2", "P2")
        canonical = result.canonicalize(result.state.to_canonical(population))
        database = result.state_map.forward(canonical)
        assert database.is_valid()
        assert result.state_map.backward(database) == canonical


class TestCombineSubRelation:
    def test_combine_sub_into_super(self):
        schema = figure6_schema()
        options = MappingOptions(
            null_policy=NullPolicy.NOT_IN_KEYS,  # sub keyed by Paper_Id
            combine_tables=(("Paper", "Program_Paper"),),
        )
        result = map_schema(schema, options)
        names = {r.name for r in result.relational.relations}
        assert "Program_Paper" not in names
        paper = result.relational.relation("Paper")
        assert "Paper_ProgramId_with" in paper.attribute_names
        assert paper.attribute("Paper_ProgramId_with").nullable

    def test_combine_generates_membership_lossless_rules(self):
        schema = figure6_schema()
        options = MappingOptions(
            null_policy=NullPolicy.NOT_IN_KEYS,
            combine_tables=(("Paper", "Program_Paper"),),
        )
        result = map_schema(schema, options)
        comments = {c.comment for c in result.relational.checks("Paper")}
        assert "Equal Existence" in comments  # ProgramId <-> Session
        assert "Dependent Existence" in comments  # Person -> anchor

    def test_combined_sub_round_trip(self):
        schema = figure6_schema()
        options = MappingOptions(
            null_policy=NullPolicy.NOT_IN_KEYS,
            combine_tables=(("Paper", "Program_Paper"),),
        )
        result = map_schema(schema, options)
        population = figure6_population(schema)
        canonical = result.canonicalize(result.state.to_canonical(population))
        database = result.state_map.forward(canonical)
        assert database.is_valid(), [str(v) for v in database.check()][:3]
        assert result.state_map.backward(database) == canonical

    def test_mismatched_keys_rejected(self):
        schema = figure6_schema()
        # Under the default policy Program_Paper is keyed by its own
        # id, not Paper's: a lossless join is impossible.
        options = MappingOptions(combine_tables=(("Paper", "Program_Paper"),))
        with pytest.raises(MappingError):
            map_schema(schema, options)

    def test_unknown_relation_rejected(self):
        with pytest.raises(MappingError):
            map_schema(
                figure6_schema(),
                MappingOptions(combine_tables=(("Paper", "Nope"),)),
            )

    def test_memberless_subtype_combine_rejected(self):
        b = SchemaBuilder("s")
        b.nolot("Paper").nolot("PP").lot("Paper_Id", char(6))
        b.lot_nolot("Person", char(30))
        b.identifier("Paper", "Paper_Id")
        b.subtype("PP", "Paper")
        b.attribute("PP", "Person", fact="by")  # optional only
        options = MappingOptions(combine_tables=(("Paper", "PP"),))
        with pytest.raises(MappingError):
            map_schema(b.build(), options)


class TestOmitTables:
    def test_omit_drops_relation_and_records_loss(self):
        schema = figure6_schema()
        options = MappingOptions(omit_tables=("Invited_Paper",))
        result = map_schema(schema, options)
        names = {r.name for r in result.relational.relations}
        assert "Invited_Paper" not in names
        assert any(
            p.name == "OMITTED$Invited_Paper" for p in result.pseudo_constraints
        )
        assert any(s.transformation == "omit-table" for s in result.steps)

    def test_omit_unknown_relation_rejected(self):
        with pytest.raises(MappingError):
            map_schema(
                figure6_schema(), MappingOptions(omit_tables=("Nope",))
            )

    def test_omitted_table_absent_from_forward_state(self):
        schema = figure6_schema()
        result = map_schema(
            schema, MappingOptions(omit_tables=("Invited_Paper",))
        )
        database = result.forward(figure6_population(schema))
        assert not result.relational.has_relation("Invited_Paper")
        assert database.is_valid()
