"""Tests for the map report and the transformation trace."""

import pytest

from repro.cris import figure6_schema
from repro.mapper import MappingOptions, SublinkPolicy, map_schema

INDICATOR_INVITED = ("Invited_Paper_IS_Paper", SublinkPolicy.INDICATOR)


@pytest.fixture(scope="module")
def result():
    return map_schema(
        figure6_schema(),
        MappingOptions(sublink_overrides=(INDICATOR_INVITED,)),
    )


class TestForwardsMap:
    def test_fact_mapping_matches_paper_fragment(self, result):
        # Paper fragment 1: the presents fact maps to a SELECT with a
        # NOT NULL filter on the optional column.
        report = result.map_report()
        assert (
            "FACT WITH ROLE presented_by ON NOLOT Program_Paper AND ROLE "
            "presenting ON LOT-NOLOT Person" in report
        )
        index = report.index("ROLE presented_by")
        block = report[index:index + 400]
        assert "SELECT Paper_ProgramId , Person_presenting" in block
        assert "FROM Program_Paper" in block
        assert "WHERE ( Person_presenting IS NOT NULL )" in block

    def test_sublink_mapping_matches_paper_fragment(self, result):
        report = result.map_report()
        assert "SUBLINK IS FROM NOLOT Program_Paper TO NOLOT Paper" in report
        index = report.index("SUBLINK IS FROM NOLOT Program_Paper")
        block = report[index:index + 300]
        assert "SELECT Paper_ProgramId_Is , Paper_Id" in block
        assert "WHERE ( Paper_ProgramId_Is IS NOT NULL )" in block

    def test_identifier_mapping_matches_paper_fragment(self, result):
        report = result.map_report()
        assert "IDENTIFIER : ROLE with ON NOLOT Paper AND LOT Paper_Id" in report
        index = report.index("IDENTIFIER : ROLE with ON NOLOT Paper")
        block = report[index:index + 300]
        assert "UNIQUE ( Paper_Id )" in block
        assert "ON Paper" in block
        assert "CONSTRAINT C_KEY$" in block

    def test_every_fact_appears_in_forwards_map(self, result):
        concepts = {concept for concept, _ in result.provenance.forward}
        for fact in result.canonical.fact_types:
            assert any(fact.first.name in c and fact.second.name in c
                       for c in concepts), fact.name


class TestBackwardsMap:
    def test_table_derivation(self, result):
        report = result.map_report()
        index = report.index("TABLE Paper\n")
        block = report[index:index + 700]
        assert "DERIVED FROM" in block
        assert "NOLOT Paper" in block
        assert "FACT WITH ROLE with ON NOLOT Paper AND ROLE of ON LOT Title" in block
        assert "SUBLINK IS FROM NOLOT Program_Paper TO NOLOT Paper" in block

    def test_column_derivation(self, result):
        report = result.map_report()
        assert "COLUMN Paper_ProgramId IN TABLE Program_Paper" in report

    def test_foreign_key_derivation(self, result):
        report = result.map_report()
        index = report.index("FOREIGN KEY Program_Paper")
        block = report[index:index + 400]
        assert "REFERENCES Paper ( Paper_ProgramId_Is )" in block
        assert "SUBLINK IS FROM NOLOT Program_Paper TO NOLOT Paper" in block

    def test_equality_view_derivation_lists_concepts(self, result):
        report = result.map_report()
        index = report.index("EQUALITY VIEW CONSTRAINT :")
        block = report[index:index + 900]
        assert "DERIVED FROM" in block
        assert "NOLOT Program_Paper" in block


class TestTrace:
    def test_trace_lists_applied_steps(self, result):
        trace = result.trace_report()
        assert "add-indicator" in trace
        assert "group-functional-facts" in trace
        assert "store-sublink-in-super" in trace
        assert "sublink-lossless-rule" in trace

    def test_lossless_rules_recorded_on_steps(self, result):
        rules = [
            name for step in result.steps for name in step.lossless_rules
        ]
        assert any(name.startswith("C_EQ$") for name in rules)

    def test_stats_summary(self, result):
        stats = result.stats()
        assert stats["relations"] == 2
        assert stats["steps"] == len(result.steps)
        assert "pseudo_constraints" in stats
