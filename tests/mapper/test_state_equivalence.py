"""Empirical losslessness: g : STATES(S1) -> STATES(S2) is a bijection.

Definition 2 of the paper.  For canonical populations (instances
named by their reference values) the composite mapping must satisfy:

* forward(pop) is a valid database state (the lossless rules hold);
* backward(forward(pop)) == pop (injectivity, observed);
* forward(backward(db)) == db for valid db (surjectivity, observed).

Hypothesis drives the schema shapes, policies and population seeds.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.brm import SchemaBuilder, char, numeric
from repro.cris import figure6_population, figure6_schema
from repro.mapper import MappingOptions, NullPolicy, SublinkPolicy, map_schema
from repro.workloads import SchemaShape, generate_population, generate_schema

POLICIES = st.tuples(
    st.sampled_from(
        [NullPolicy.DEFAULT, NullPolicy.NOT_ALLOWED, NullPolicy.NOT_IN_KEYS]
    ),
    st.sampled_from(
        [SublinkPolicy.SEPARATE, SublinkPolicy.TOGETHER, SublinkPolicy.INDICATOR]
    ),
)


def round_trip(schema, population, options):
    result = map_schema(schema, options)
    canonical = result.canonicalize(result.state.to_canonical(population))
    database = result.state_map.forward(canonical)
    violations = database.check()
    assert not violations, [str(v) for v in violations][:5]
    assert result.state_map.backward(database) == canonical
    # Surjectivity: forward of the reconstruction is the same database.
    assert result.state_map.forward(
        result.state_map.backward(database)
    ) == database
    return result


class TestFigure6Properties:
    @settings(max_examples=30, deadline=None)
    @given(policies=POLICIES)
    def test_every_policy_combination_is_lossless(self, policies):
        null_policy, sublink_policy = policies
        schema = figure6_schema()
        round_trip(
            schema,
            figure6_population(schema),
            MappingOptions(
                null_policy=null_policy, sublink_policy=sublink_policy
            ),
        )


class TestGeneratedSchemaProperties:
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        schema_seed=st.integers(min_value=0, max_value=50),
        population_seed=st.integers(min_value=0, max_value=50),
        policies=POLICIES,
    )
    def test_random_schemas_are_lossless(
        self, schema_seed, population_seed, policies
    ):
        null_policy, sublink_policy = policies
        schema = generate_schema(
            SchemaShape(
                entity_types=8,
                exclusion_groups=1,
                subtype_own_identifier_ratio=0.5,
            ),
            seed=schema_seed,
        )
        population = generate_population(
            schema, instances_per_type=4, seed=population_seed
        )
        assert population.is_valid()
        round_trip(
            schema,
            population,
            MappingOptions(
                null_policy=null_policy, sublink_policy=sublink_policy
            ),
        )


class TestRichConstraintProperties:
    """Rich-constraint shapes (value restrictions, role subsets and
    equalities between optional facts) through the full round trip:
    the generated population satisfies them by construction, the
    mapped database enforces them, and the state map stays bijective.
    """

    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        schema_seed=st.integers(min_value=0, max_value=40),
        population_seed=st.integers(min_value=0, max_value=40),
        policies=POLICIES,
    )
    def test_rich_constraint_schemas_are_lossless(
        self, schema_seed, population_seed, policies
    ):
        null_policy, sublink_policy = policies
        schema = generate_schema(
            SchemaShape(
                entity_types=8,
                exclusion_groups=1,
                subtype_own_identifier_ratio=0.5,
                rich_constraints=True,
                subset_ratio=0.8,
                value_ratio=0.5,
            ),
            seed=schema_seed,
        )
        population = generate_population(
            schema, instances_per_type=4, seed=population_seed
        )
        assert population.is_valid(), [str(v) for v in population.check()][:5]
        round_trip(
            schema,
            population,
            MappingOptions(
                null_policy=null_policy, sublink_policy=sublink_policy
            ),
        )

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=60))
    def test_value_restricted_fillers_come_from_allowed_values(self, seed):
        from repro.brm.constraints import ValueConstraint

        schema = generate_schema(
            SchemaShape(entity_types=6, rich_constraints=True, value_ratio=1.0),
            seed=seed,
        )
        population = generate_population(schema, seed=seed)
        restricted = {
            c.object_type: set(c.values)
            for c in schema.constraints
            if isinstance(c, ValueConstraint)
        }
        assert restricted  # value_ratio=1.0 guarantees some
        for type_name, allowed in restricted.items():
            values = population.instances(type_name)
            assert set(values) <= allowed, (type_name, values)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=60))
    def test_subset_and_equality_roles_hold_in_population(self, seed):
        from repro.brm.constraints import (
            EqualityConstraint,
            SubsetConstraint,
        )

        schema = generate_schema(
            SchemaShape(
                entity_types=8, rich_constraints=True, subset_ratio=1.0
            ),
            seed=seed,
        )
        population = generate_population(schema, seed=seed)
        for constraint in schema.constraints:
            if isinstance(constraint, SubsetConstraint):
                assert population.item_population(
                    constraint.subset
                ) <= population.item_population(
                    constraint.superset
                ), constraint.name
            elif isinstance(constraint, EqualityConstraint):
                first, *rest = constraint.items
                for other in rest:
                    assert population.item_population(
                        first
                    ) == population.item_population(other), constraint.name


class TestTranslationProperties:
    """Data translation between designs (§4.1) on random schemas."""

    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(min_value=0, max_value=30),
        policies=st.tuples(POLICIES, POLICIES),
    )
    def test_translation_agrees_with_direct_mapping(self, seed, policies):
        from repro.mapper import translate_state

        (null_a, sub_a), (null_b, sub_b) = policies
        schema = generate_schema(
            SchemaShape(entity_types=6, subtype_own_identifier_ratio=0.5),
            seed=seed,
        )
        population = generate_population(schema, seed=seed)
        source = map_schema(
            schema, MappingOptions(null_policy=null_a, sublink_policy=sub_a)
        )
        target = map_schema(
            schema, MappingOptions(null_policy=null_b, sublink_policy=sub_b)
        )
        database = source.forward(population)
        translated = translate_state(source, database, target)
        assert translated == target.forward(population)


class TestViolationVisibility:
    """Invalid database states are rejected by the lossless rules —
    the constraints are not decorative."""

    def test_equality_view_catches_missing_sub_row(self):
        schema = figure6_schema()
        result = map_schema(schema)
        population = figure6_population(schema)
        database = result.forward(population)
        # Remove a Program_Paper row without clearing the sublink
        # attribute in Paper: C_EQ$ must fire.
        from repro.relational import Compare

        database.delete(
            "Program_Paper", Compare("Paper_ProgramId", "=", "A1")
        )
        names = {v.constraint_name for v in database.check()}
        assert any(name.startswith("C_EQ$") for name in names)

    def test_equal_existence_catches_partial_subtype_row(self):
        schema = figure6_schema()
        result = map_schema(
            schema, MappingOptions(sublink_policy=SublinkPolicy.TOGETHER)
        )
        database = result.forward(figure6_population(schema))
        database.insert(
            "Paper",
            {
                "Paper_Id": "P9",
                "Title_of": "Broken",
                "Is_Invited_Paper": "N",
                "Paper_ProgramId_with": "A9",  # program id without session
            },
        )
        names = {v.constraint_name for v in database.check()}
        assert any(name.startswith("C_EE$") for name in names)

    def test_dependent_existence_catches_presenter_without_program(self):
        schema = figure6_schema()
        result = map_schema(
            schema, MappingOptions(sublink_policy=SublinkPolicy.TOGETHER)
        )
        database = result.forward(figure6_population(schema))
        database.insert(
            "Paper",
            {
                "Paper_Id": "P9",
                "Title_of": "Broken",
                "Is_Invited_Paper": "N",
                "Person_presenting": "Eve",  # presenter but no program id
            },
        )
        names = {v.constraint_name for v in database.check()}
        assert any(name.startswith("C_DE$") for name in names)

    def test_value_restriction_catches_bad_indicator(self):
        schema = figure6_schema()
        result = map_schema(
            schema, MappingOptions(sublink_policy=SublinkPolicy.INDICATOR)
        )
        database = result.forward(figure6_population(schema))
        database.insert(
            "Paper",
            {"Paper_Id": "P9", "Title_of": "Broken", "Is_Invited_Paper": "?"},
        )
        names = {v.constraint_name for v in database.check()}
        assert any(name.startswith("C_VAL$") for name in names)


class TestCanonicalization:
    def test_canonicalize_uses_root_reference(self):
        schema = figure6_schema()
        result = map_schema(schema)
        population = figure6_population(schema)
        canonical = result.canonicalize(result.state.to_canonical(population))
        # Abstract 'p1' is renamed to its Paper_Id value 'P1',
        # including in its subtype memberships.
        assert "P1" in canonical.instances("Paper")
        assert "P1" in canonical.instances("Program_Paper")
        assert "p1" not in canonical.instances("Paper")

    def test_canonicalize_rejects_incomplete_reference(self):
        from repro.brm import Population
        from repro.errors import MappingError

        b = SchemaBuilder("s")
        b.nolot("Paper").lot("Paper_Id", char(6))
        b.identifier("Paper", "Paper_Id")
        schema = b.build()
        result = map_schema(schema)
        population = Population(schema)
        population.add_instance("Paper", "ghost")  # no id fact
        with pytest.raises(MappingError):
            result.canonicalize(population)
