"""The lexical mapping option end-to-end (section 4.2.3).

"RIDL-M selects for each NOLOT the 'smallest' lexical representation
type ... Since this limits the freedom of the database engineer,
flexibility needs to be added to allow selection for each NOLOT of
the preferred lexical representation."
"""

import pytest

from repro.brm import Population, SchemaBuilder, char, numeric
from repro.errors import AnalysisError, SchemaError
from repro.mapper import MappingOptions, map_schema


def person_schema():
    b = SchemaBuilder("s")
    b.nolot("Person")
    b.lot("Ssn", numeric(9)).lot("FullName", char(60))
    b.identifier("Person", "Ssn")
    b.identifier("Person", "FullName")
    b.lot_nolot("City", char(20))
    b.attribute("Person", "City", fact="lives_in", total=True)
    b.nolot("Account").lot("AccNr", char(8))
    b.identifier("Account", "AccNr")
    b.fact(
        "holder",
        ("Account", "held_by"),
        ("Person", "holding"),
        unique="first",
        total="first",
    )
    return b.build()


class TestDefaultSmallest:
    def test_smallest_representation_is_primary_key(self):
        result = map_schema(person_schema())
        assert result.relational.primary_key("Person").columns == ("Ssn",)
        # The other naming convention is still present, as a mandatory
        # candidate-key column.
        person = result.relational.relation("Person")
        assert "FullName_with" in person.attribute_names

    def test_references_use_the_chosen_representation(self):
        result = map_schema(person_schema())
        account = result.relational.relation("Account")
        assert "Ssn_holding" in account.attribute_names


class TestPreferenceOverride:
    def options(self):
        return MappingOptions(
            lexical_preferences=(("Person", ("Person_has_FullName",)),)
        )

    def test_preferred_representation_becomes_key(self):
        result = map_schema(person_schema(), self.options())
        assert result.relational.primary_key("Person").columns == (
            "FullName",
        )
        account = result.relational.relation("Account")
        assert "FullName_holding" in account.attribute_names

    def test_preference_round_trip(self):
        schema = person_schema()
        population = Population(schema)
        population.add_fact("Person_has_Ssn", "p", 123456789)
        population.add_fact("Person_has_FullName", "p", "Ann Smith")
        population.add_fact("lives_in", "p", "Tilburg")
        population.add_fact("Account_has_AccNr", "a", "ACC1")
        population.add_fact("holder", "a", "p")
        result = map_schema(schema, self.options())
        canonical = result.canonicalize(result.state.to_canonical(population))
        # The canonical identity follows the chosen scheme.
        assert "Ann Smith" in canonical.instances("Person")
        database = result.state_map.forward(canonical)
        assert database.is_valid()
        assert result.state_map.backward(database) == canonical

    def test_unknown_preference_rejected(self):
        with pytest.raises((SchemaError, AnalysisError)):
            map_schema(
                person_schema(),
                MappingOptions(
                    lexical_preferences=(("Person", ("no_such_fact",)),)
                ),
            )
