"""Option canonicalization and the option-lattice enumeration."""

import pytest

from repro.cris import figure6_schema
from repro.mapper import (
    MappingOptions,
    NullPolicy,
    OptionSpace,
    SublinkPolicy,
    discover_space,
    enumerate_options,
)


class TestOptionsNormalization:
    def test_dict_inputs_become_tuples(self):
        options = MappingOptions(
            sublink_overrides={"S": SublinkPolicy.TOGETHER},
            lexical_preferences={"Person": ["PersonName"]},
            combine_tables=[["A", "B"]],
            omit_tables=["T"],
            scope=["Paper"],
        )
        assert options.sublink_overrides == (("S", SublinkPolicy.TOGETHER),)
        assert options.lexical_preferences == (("Person", ("PersonName",)),)
        assert options.combine_tables == (("A", "B"),)
        assert options.omit_tables == ("T",)
        assert options.scope == ("Paper",)

    def test_hashable_regardless_of_input_shape(self):
        from_dict = MappingOptions(
            sublink_overrides={"S": SublinkPolicy.TOGETHER}
        )
        from_tuple = MappingOptions(
            sublink_overrides=(("S", SublinkPolicy.TOGETHER),)
        )
        assert hash(from_dict) == hash(from_tuple)
        assert from_dict == from_tuple
        assert len({from_dict, from_tuple}) == 1

    def test_canonical_sorts_and_dedups(self):
        options = MappingOptions(
            sublink_overrides=(
                ("Z", SublinkPolicy.TOGETHER),
                ("A", SublinkPolicy.INDICATOR),
                ("Z", SublinkPolicy.SEPARATE),  # duplicate: first wins
            ),
            omit_tables=("T2", "T1", "T2"),
        )
        canonical = options.canonical()
        assert canonical.sublink_overrides == (
            ("A", SublinkPolicy.INDICATOR),
            ("Z", SublinkPolicy.TOGETHER),
        )
        assert canonical.omit_tables == ("T1", "T2")

    def test_canonical_preserves_policy_for(self):
        options = MappingOptions(
            sublink_overrides=(
                ("Z", SublinkPolicy.TOGETHER),
                ("Z", SublinkPolicy.SEPARATE),
            ),
        )
        assert (
            options.canonical().policy_for("Z")
            is options.policy_for("Z")
            is SublinkPolicy.TOGETHER
        )

    def test_candidate_key_identifies_equivalent_sets(self):
        a = MappingOptions(
            omit_tables=("T1", "T2"),
            sublink_overrides=(("S", SublinkPolicy.TOGETHER),),
        )
        b = MappingOptions(
            omit_tables=("T2", "T1"),
            sublink_overrides={"S": SublinkPolicy.TOGETHER},
        )
        assert a.candidate_key() == b.candidate_key()

    def test_prefix_key_ignores_combine_and_omit(self):
        base = MappingOptions(null_policy=NullPolicy.NOT_IN_KEYS)
        suffixed = base.with_overrides(
            combine_tables=(("A", "B"),), omit_tables=("T",)
        )
        assert base.prefix_key() == suffixed.prefix_key()
        assert base.candidate_key() != suffixed.candidate_key()
        assert suffixed.prefix_options() == base

    def test_prefix_key_sees_prefix_fields(self):
        base = MappingOptions()
        assert (
            base.prefix_key()
            != base.with_overrides(null_policy=NullPolicy.ALLOWED).prefix_key()
        )
        assert (
            base.prefix_key()
            != base.with_overrides(
                sublink_overrides={"S": SublinkPolicy.TOGETHER}
            ).prefix_key()
        )

    def test_describe_is_stable(self):
        options = MappingOptions(
            null_policy=NullPolicy.NOT_ALLOWED,
            combine_tables=(("A", "B"),),
            omit_tables=("T",),
        )
        assert options.describe() == (
            "NOT_ALLOWED SEPARATE combine(A<-B) omit(T)"
        )


class TestEnumeration:
    def test_policy_axes_product(self):
        space = OptionSpace(
            null_policies=(NullPolicy.DEFAULT, NullPolicy.NOT_ALLOWED),
            sublink_policies=(SublinkPolicy.SEPARATE, SublinkPolicy.TOGETHER),
        )
        candidates = enumerate_options(space)
        assert len(candidates) == 4
        assert len({c.candidate_key() for c in candidates}) == 4

    def test_toggles_double_the_lattice(self):
        space = OptionSpace(
            null_policies=(NullPolicy.DEFAULT,),
            sublink_policies=(SublinkPolicy.SEPARATE,),
            combine_toggles=(("A", "B"),),
            omit_toggles=("T",),
        )
        assert space.size() == 4
        candidates = enumerate_options(space)
        assert len(candidates) == 4
        suffixes = {
            (c.combine_tables, c.omit_tables) for c in candidates
        }
        assert suffixes == {
            ((("A", "B"),), ("T",)),
            ((("A", "B"),), ()),
            ((), ("T",)),
            ((), ()),
        }

    def test_override_axis_none_means_follow_global(self):
        space = OptionSpace(
            null_policies=(NullPolicy.DEFAULT,),
            sublink_policies=(SublinkPolicy.SEPARATE,),
            sublink_override_axes=(
                ("S", (None, SublinkPolicy.TOGETHER)),
            ),
        )
        candidates = enumerate_options(space)
        assert [c.sublink_overrides for c in candidates] == [
            (),
            (("S", SublinkPolicy.TOGETHER),),
        ]

    def test_overlapping_axes_dedup(self):
        # The override axis repeats the global policy: the two corners
        # canonicalize to distinct keys, but an explicit SEPARATE
        # override equals... it does not — overrides are recorded.
        # Dedup is exercised through identical *candidate* values:
        space = OptionSpace(
            null_policies=(NullPolicy.DEFAULT, NullPolicy.DEFAULT),
            sublink_policies=(SublinkPolicy.SEPARATE,),
        )
        assert len(enumerate_options(space)) == 1

    def test_prune_predicate(self):
        space = OptionSpace()
        pruned = enumerate_options(
            space,
            prune=lambda c: c.null_policy is not NullPolicy.NOT_ALLOWED,
        )
        assert pruned
        assert all(
            c.null_policy is not NullPolicy.NOT_ALLOWED for c in pruned
        )

    def test_hard_cap(self):
        space = OptionSpace(max_candidates=3)
        assert space.size() == 9
        assert len(enumerate_options(space)) == 3

    def test_deterministic_order(self):
        space = OptionSpace(
            combine_toggles=(("A", "B"),), omit_toggles=("T",)
        )
        first = enumerate_options(space)
        second = enumerate_options(space)
        assert first == second


class TestDiscoverSpace:
    def test_probes_fact_relations_for_omit_toggles(self):
        from repro.cris import cris_schema

        space = discover_space(cris_schema())
        # assigned_to and committee_member are the m:n facts.
        assert space.omit_toggles == ("assigned_to", "committee_member")

    def test_no_fact_relations_no_toggles(self):
        space = discover_space(figure6_schema())
        assert space.omit_toggles == ()

    def test_override_axes_from_schema_sublinks(self):
        space = discover_space(figure6_schema(), max_override_axes=2)
        names = [name for name, _ in space.sublink_override_axes]
        assert names == ["Invited_Paper_IS_Paper", "Program_Paper_IS_Paper"]
        for _, policies in space.sublink_override_axes:
            assert policies[0] is None
            assert set(policies[1:]) == set(SublinkPolicy)
