"""Tests for the conceptual query compiler and the expert-rule advisor."""

import pytest

from repro.cris import figure6_population, figure6_schema
from repro.engine.cost import TableStatistics
from repro.errors import MappingError
from repro.mapper import MappingOptions, NullPolicy, SublinkPolicy, map_schema
from repro.mapper.expert import (
    QueryPattern,
    QueryProfile,
    candidate_option_sets,
    recommend_options,
)
from repro.ridl import (
    ConceptualQuery,
    FactSelection,
    QueryCompiler,
    SubtypeFilter,
    ValueFilter,
)

ALL_OPTIONS = [
    ("alt1", MappingOptions()),
    ("alt2", MappingOptions(null_policy=NullPolicy.NOT_ALLOWED)),
    ("indicator", MappingOptions(sublink_policy=SublinkPolicy.INDICATOR)),
    ("alt4", MappingOptions(sublink_policy=SublinkPolicy.TOGETHER)),
]


@pytest.fixture(scope="module")
def schema():
    return figure6_schema()


@pytest.fixture(scope="module")
def population(schema):
    return figure6_population(schema)


class TestCompilation:
    def test_anchor_only_query(self, schema, population):
        result = map_schema(schema)
        compiler = QueryCompiler(result)
        compiled = compiler.compile(
            ConceptualQuery(
                "Paper",
                selections=(FactSelection("Paper_has_Title", optional=False),),
            )
        )
        assert compiled.relations_touched == ["Paper"]
        assert "SELECT Paper_Id, Title_of" in compiled.sql_text()

    def test_subtype_fact_joins_through_sublink_attribute(self, schema):
        result = map_schema(schema)
        compiler = QueryCompiler(result)
        compiled = compiler.compile(
            ConceptualQuery("Paper", selections=(FactSelection("scheduled"),))
        )
        assert compiled.relations_touched == ["Paper", "Program_Paper"]
        # The join goes through the `_Is` sublink attribute, exactly
        # as the map report prescribes.
        assert compiled.steps[0].join_on == (
            ("Paper_ProgramId_Is", "Paper_ProgramId"),
        )

    def test_unknown_fact_rejected(self, schema):
        compiler = QueryCompiler(map_schema(schema))
        with pytest.raises(MappingError):
            compiler.compile(
                ConceptualQuery("Paper", selections=(FactSelection("nope"),))
            )

    def test_unrelated_fact_rejected(self, schema):
        compiler = QueryCompiler(map_schema(schema))
        with pytest.raises(MappingError):
            compiler.compile(
                ConceptualQuery(
                    "Session", selections=(FactSelection("Paper_has_Title"),)
                )
            )

    def test_unanchored_type_rejected(self, schema):
        compiler = QueryCompiler(map_schema(schema))
        with pytest.raises(MappingError):
            compiler.compile(ConceptualQuery("Person"))

    def test_omitted_fact_rejected(self, schema):
        result = map_schema(
            schema, MappingOptions(omit_tables=("Invited_Paper",))
        )
        compiler = QueryCompiler(result)
        # Invited_Paper had no facts; but querying for a fact whose
        # table was omitted must fail loudly, so omit a satellite.
        result2 = map_schema(
            schema,
            MappingOptions(
                null_policy=NullPolicy.NOT_ALLOWED,
                omit_tables=("Paper_submission",),
            ),
        )
        compiler2 = QueryCompiler(result2)
        with pytest.raises(MappingError):
            compiler2.compile(
                ConceptualQuery(
                    "Paper", selections=(FactSelection("submission"),)
                )
            )


class TestExecution:
    @pytest.mark.parametrize("label,options", ALL_OPTIONS)
    def test_same_answers_under_every_physical_design(
        self, schema, population, label, options
    ):
        """One conceptual query; four physical designs; one answer."""
        result = map_schema(schema, options)
        database = result.forward(population)
        compiler = QueryCompiler(result)
        compiled = compiler.compile(
            ConceptualQuery(
                "Paper",
                selections=(
                    FactSelection("Paper_has_Title", optional=False),
                    FactSelection("submission"),
                    FactSelection("scheduled"),
                ),
            )
        )
        answers = {
            (row["Paper"], row["Paper_has_Title"], row["submission"],
             row["scheduled"])
            for row in compiler.execute(compiled, database)
        }
        assert answers == {
            ("P1", "On Conference Databases", "1988-10-01", 101),
            ("P2", "Binary Models Revisited", None, 102),
            ("P3", "A Late Submission", "1988-12-24", None),
        }

    @pytest.mark.parametrize("label,options", ALL_OPTIONS)
    def test_subtype_filter_under_every_design(
        self, schema, population, label, options
    ):
        result = map_schema(schema, options)
        database = result.forward(population)
        compiler = QueryCompiler(result)
        compiled = compiler.compile(
            ConceptualQuery(
                "Paper",
                selections=(FactSelection("Paper_has_Title", optional=False),),
                filters=(SubtypeFilter("Invited_Paper"),),
            )
        )
        answers = compiler.execute(compiled, database)
        assert [row["Paper"] for row in answers] == ["P1"]

    def test_value_filter(self, schema, population):
        result = map_schema(schema)
        database = result.forward(population)
        compiler = QueryCompiler(result)
        compiled = compiler.compile(
            ConceptualQuery(
                "Paper",
                selections=(FactSelection("Paper_has_Title", optional=False),),
                filters=(ValueFilter("Paper_has_Title",
                                     "Binary Models Revisited"),),
            )
        )
        answers = compiler.execute(compiled, database)
        assert [row["Paper"] for row in answers] == ["P2"]

    def test_mandatory_selection_drops_lacking_instances(
        self, schema, population
    ):
        result = map_schema(schema)
        database = result.forward(population)
        compiler = QueryCompiler(result)
        compiled = compiler.compile(
            ConceptualQuery(
                "Paper",
                selections=(FactSelection("scheduled", optional=False),),
            )
        )
        answers = compiler.execute(compiled, database)
        assert {row["Paper"] for row in answers} == {"P1", "P2"}


class TestExpertRules:
    def hot_profile(self):
        return QueryProfile(
            (
                QueryPattern(
                    "Paper",
                    ("Paper_has_Title", "submission", "presents", "scheduled"),
                    frequency=100.0,
                ),
            )
        )

    def test_candidates_cover_policies_and_sublinks(self, schema):
        labels = [label for label, _ in candidate_option_sets(schema)]
        assert "default (SEPARATE)" in labels
        assert "TOGETHER everywhere" in labels
        assert any("Program_Paper_IS_Paper" in label for label in labels)

    def test_hot_co_access_recommends_denormalization(self, schema):
        recommendation = recommend_options(
            schema,
            self.hot_profile(),
            statistics=TableStatistics(default_rows=100_000),
        )
        assert "TOGETHER" in recommendation.best.label
        by_label = {e.label: e for e in recommendation.ranking}
        assert (
            recommendation.best.weighted_cost
            < by_label["default (SEPARATE)"].weighted_cost
        )
        assert (
            by_label["NULL NOT ALLOWED"].weighted_cost
            > by_label["default (SEPARATE)"].weighted_cost
        )

    def test_cold_workload_keeps_default(self, schema):
        recommendation = recommend_options(
            schema,
            QueryProfile(
                (QueryPattern("Paper", ("Paper_has_Title",), frequency=1.0),)
            ),
        )
        assert recommendation.best.label == "default (SEPARATE)"

    def test_render_lists_all_candidates(self, schema):
        recommendation = recommend_options(schema, self.hot_profile())
        rendered = recommendation.render()
        assert "<= recommended" in rendered
        assert "default (SEPARATE)" in rendered

    def test_profile_requires_patterns(self):
        with pytest.raises(ValueError):
            QueryProfile(())

    def test_recommended_options_actually_map(self, schema):
        recommendation = recommend_options(schema, self.hot_profile())
        result = map_schema(schema, recommendation.best.options)
        assert result.relational.relations
