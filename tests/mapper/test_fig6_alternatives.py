"""The figure-6 reproduction: four state-equivalent relational schemas.

These tests assert the shapes the paper prints for Alternatives 1-4
(section 4.2.3): table compositions, nullability (bracketed names),
keys, foreign keys, and the generated lossless rules C_EQ$ (equality
view), C_DE$ (dependent existence) and C_EE$ (equal existence).
"""

import pytest

from repro.cris import figure6_population, figure6_schema
from repro.mapper import MappingOptions, NullPolicy, SublinkPolicy, map_schema
from repro.relational import (
    CheckConstraint,
    EqualityViewConstraint,
    ForeignKey,
)

INDICATOR_INVITED = ("Invited_Paper_IS_Paper", SublinkPolicy.INDICATOR)


@pytest.fixture(scope="module")
def schema():
    return figure6_schema()


def columns(result, relation):
    rel = result.relational.relation(relation)
    return {a.name: a.nullable for a in rel.attributes}


class TestAlternative1Default:
    @pytest.fixture(scope="class")
    def result(self, schema):
        return map_schema(schema)

    def test_three_relations(self, result):
        names = {r.name for r in result.relational.relations}
        assert names == {"Paper", "Invited_Paper", "Program_Paper"}

    def test_paper_columns(self, result):
        cols = columns(result, "Paper")
        assert cols == {
            "Paper_Id": False,
            "Title_of": False,
            "Date_of_submission": True,
            "Paper_ProgramId_Is": True,
        }

    def test_program_paper_columns(self, result):
        cols = columns(result, "Program_Paper")
        assert cols == {
            "Paper_ProgramId": False,
            "Person_presenting": True,
            "Session_comprising": False,
        }

    def test_invited_paper_is_keyed_by_inherited_reference(self, result):
        assert columns(result, "Invited_Paper") == {"Paper_Id": False}
        pk = result.relational.primary_key("Invited_Paper")
        assert pk.columns == ("Paper_Id",)

    def test_sublink_foreign_keys(self, result):
        fks = result.relational.foreign_keys()
        edges = {
            (fk.relation, fk.referenced_relation, fk.referenced_columns)
            for fk in fks
        }
        assert ("Invited_Paper", "Paper", ("Paper_Id",)) in edges
        # Program_Paper references the sublink attribute in Paper, as
        # in the paper's generated SQL2 fragment.
        assert ("Program_Paper", "Paper", ("Paper_ProgramId_Is",)) in edges

    def test_equality_view_lossless_rule(self, result):
        views = [
            c
            for c in result.relational.view_constraints()
            if isinstance(c, EqualityViewConstraint)
        ]
        assert len(views) == 1
        view = views[0]
        assert view.left.relation == "Program_Paper"
        assert view.left.columns == ("Paper_ProgramId",)
        assert view.right.relation == "Paper"
        assert view.right.columns == ("Paper_ProgramId_Is",)
        assert "IS NOT NULL" in view.right.where.render()


class TestAlternative2NoNulls:
    @pytest.fixture(scope="class")
    def result(self, schema):
        return map_schema(
            schema, MappingOptions(null_policy=NullPolicy.NOT_ALLOWED)
        )

    def test_no_nullable_attribute_anywhere(self, result):
        for relation in result.relational.relations:
            for attribute in relation.attributes:
                assert not attribute.nullable, (relation.name, attribute.name)

    def test_many_small_tables(self, result):
        # "a large number of small tables will in general be generated"
        assert len(result.relational.relations) == 5
        names = {r.name for r in result.relational.relations}
        assert "Paper_submission" in names
        assert "Program_Paper_presents" in names

    def test_satellite_shape(self, result):
        cols = columns(result, "Paper_submission")
        assert cols == {"Paper_Id": False, "Date_of_submission": False}
        fks = result.relational.foreign_keys("Paper_submission")
        assert fks[0].referenced_relation == "Paper"

    def test_sub_relation_keyed_by_inherited_reference(self, result):
        # The nullable `_Is` attribute is not acceptable here, so the
        # sub-relation carries the super's key and its own id becomes
        # a mandatory candidate-key column.
        cols = columns(result, "Program_Paper")
        assert cols == {
            "Paper_Id": False,
            "Paper_ProgramId_with": False,
            "Session_comprising": False,
        }
        pk = result.relational.primary_key("Program_Paper")
        assert pk.columns == ("Paper_Id",)


class TestAlternative3Indicator:
    @pytest.fixture(scope="class")
    def result(self, schema):
        return map_schema(
            schema, MappingOptions(sublink_overrides=(INDICATOR_INVITED,))
        )

    def test_two_relations_only(self, result):
        # The factless Invited_Paper sub-relation is omitted; its
        # membership is the indicator attribute.
        names = {r.name for r in result.relational.relations}
        assert names == {"Paper", "Program_Paper"}

    def test_paper_columns_match_paper_listing(self, result):
        cols = columns(result, "Paper")
        assert cols == {
            "Paper_Id": False,
            "Title_of": False,
            "Date_of_submission": True,
            "Is_Invited_Paper": False,
            "Paper_ProgramId_Is": True,
        }

    def test_indicator_is_value_restricted(self, result):
        checks = result.relational.checks("Paper")
        value_checks = [c for c in checks if c.comment == "Value Restriction"]
        assert len(value_checks) == 1
        assert "Is_Invited_Paper" in value_checks[0].predicate.columns()

    def test_equality_view_c_eq(self, result):
        views = result.relational.view_constraints()
        assert any(c.name.startswith("C_EQ$") for c in views)

    def test_program_paper_matches_generated_fragment(self, result):
        cols = columns(result, "Program_Paper")
        assert cols == {
            "Paper_ProgramId": False,
            "Person_presenting": True,
            "Session_comprising": False,
        }
        fk = result.relational.foreign_keys("Program_Paper")[0]
        assert fk.referenced_columns == ("Paper_ProgramId_Is",)


class TestAlternative4Together:
    @pytest.fixture(scope="class")
    def result(self, schema):
        return map_schema(
            schema, MappingOptions(sublink_policy=SublinkPolicy.TOGETHER)
        )

    def test_single_relation(self, result):
        assert [r.name for r in result.relational.relations] == ["Paper"]

    def test_columns_match_paper_listing(self, result):
        cols = columns(result, "Paper")
        assert cols == {
            "Paper_Id": False,
            "Title_of": False,
            "Date_of_submission": True,
            "Paper_ProgramId_with": True,
            "Person_presenting": True,
            "Session_comprising": True,
            "Is_Invited_Paper": False,
        }

    def test_dependent_existence_c_de(self, result):
        # C_DE$_8: Person_presenting requires Paper_ProgramId_with.
        checks = [
            c
            for c in result.relational.checks("Paper")
            if c.comment == "Dependent Existence"
        ]
        assert len(checks) == 1
        assert checks[0].name.startswith("C_DE$")
        assert checks[0].predicate.columns() == {
            "Person_presenting",
            "Paper_ProgramId_with",
        }

    def test_equal_existence_c_ee(self, result):
        # C_EE$_6: Paper_ProgramId_with and Session_comprising are
        # NULL together or NOT NULL together.
        checks = [
            c
            for c in result.relational.checks("Paper")
            if c.comment == "Equal Existence"
        ]
        assert len(checks) == 1
        assert checks[0].name.startswith("C_EE$")
        assert checks[0].predicate.columns() == {
            "Paper_ProgramId_with",
            "Session_comprising",
        }

    def test_program_id_is_candidate_key(self, result):
        candidates = result.relational.candidate_keys("Paper")
        assert ("Paper_ProgramId_with",) in [c.columns for c in candidates]


class TestStateEquivalenceOfAllAlternatives:
    """The four alternatives are state equivalent (section 4.2.3)."""

    OPTIONS = [
        MappingOptions(),
        MappingOptions(null_policy=NullPolicy.NOT_ALLOWED),
        MappingOptions(sublink_overrides=(INDICATOR_INVITED,)),
        MappingOptions(sublink_policy=SublinkPolicy.TOGETHER),
    ]

    @pytest.mark.parametrize("options", OPTIONS, ids=["alt1", "alt2", "alt3", "alt4"])
    def test_round_trip(self, schema, options):
        result = map_schema(schema, options)
        population = figure6_population(schema)
        canonical = result.canonicalize(result.state.to_canonical(population))
        database = result.state_map.forward(canonical)
        assert database.is_valid(), [str(v) for v in database.check()]
        assert result.state_map.backward(database) == canonical

    def test_same_information_content(self, schema):
        # Forward through one alternative, backward, forward through
        # another: the two databases describe the same state.
        population = figure6_population(schema)
        results = [map_schema(schema, o) for o in self.OPTIONS]
        canonicals = []
        for result in results:
            canonical = result.canonicalize(
                result.state.to_canonical(population)
            )
            back = result.state_map.backward(
                result.state_map.forward(canonical)
            )
            canonicals.append(result.state.from_canonical(back).as_dict())
        for other in canonicals[1:]:
            assert other == canonicals[0]
