"""The analyzer gate's NOT_REFERABLE tolerance (section 4.2.1).

NOT_REFERABLE findings block mapping under the default options but
are tolerated under ``NullPolicy.ALLOWED`` — a NOLOT with a
non-homogeneous lexical representation is still mappable, which the
synthesis verifies; one with no reference at all still fails there.
"""

import pytest

from repro.brm import SchemaBuilder, char
from repro.errors import AnalysisError, NotReferableError
from repro.mapper import MappingOptions, NullPolicy, map_schema
from repro.mapper.engine import _gate


def disjunctive_schema():
    """A Part identified by DrawingNr or VendorCode — NOT_REFERABLE to
    the analyzer, yet mappable with nullable keys."""
    b = SchemaBuilder("parts")
    b.nolot("Part").lot("DrawingNr", char(8)).lot("VendorCode", char(10))
    b.fact("drawn", ("Part", "drawn_as"), ("DrawingNr", "drawing_of"),
           unique="both")
    b.fact("vended", ("Part", "vended_as"), ("VendorCode", "code_of"),
           unique="both")
    b.total_union("Part", ("drawn", "drawn_as"), ("vended", "vended_as"))
    return b.build()


def hopeless_schema():
    """A NOLOT with no lexical reference at all — never mappable."""
    b = SchemaBuilder("bad")
    b.nolot("Ghost").lot("K", char(3))
    b.attribute("Ghost", "K")
    return b.build()


class TestGateTolerance:
    def test_not_referable_blocks_under_default_options(self):
        with pytest.raises(AnalysisError) as excinfo:
            _gate(disjunctive_schema(), MappingOptions())
        assert "NOT_REFERABLE" in str(excinfo.value)

    def test_not_referable_tolerated_under_null_allowed(self):
        _gate(
            disjunctive_schema(),
            MappingOptions(null_policy=NullPolicy.ALLOWED),
        )  # does not raise

    def test_other_errors_still_block_under_null_allowed(self):
        b = SchemaBuilder("bad")
        b.lot("A", char(3)).lot("B", char(3))
        b.fact("l2l", ("A", "x"), ("B", "y"))  # LOT-to-LOT: correctness error
        with pytest.raises(AnalysisError):
            _gate(b.build(), MappingOptions(null_policy=NullPolicy.ALLOWED))

    def test_synthesis_verifies_mappability(self):
        # The tolerated schema really maps: the synthesis accepts the
        # non-homogeneous reference and waives the Entity Integrity
        # Rule with a nullable primary key.
        result = map_schema(
            disjunctive_schema(),
            MappingOptions(null_policy=NullPolicy.ALLOWED),
        )
        part = result.relational.relation("Part")
        pk = result.relational.primary_key("Part")
        assert pk is not None
        assert part.attribute(pk.columns[0]).nullable

    def test_synthesis_rejects_the_hopeless_case(self):
        # Tolerance is not blind: a NOLOT with no reference scheme at
        # all passes the gate under NULL ALLOWED but the synthesis
        # still reports it.
        options = MappingOptions(null_policy=NullPolicy.ALLOWED)
        _gate(hopeless_schema(), options)  # tolerated here...
        with pytest.raises(NotReferableError):
            map_schema(hopeless_schema(), options)  # ...caught here

    def test_default_gate_blocks_the_hopeless_case_early(self):
        with pytest.raises(AnalysisError):
            map_schema(hopeless_schema())
