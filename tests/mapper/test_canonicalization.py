"""Tests for canonical-form constraint reduction (section 4.1)."""

from repro.brm import Population, SchemaBuilder, char
from repro.mapper import MappingOptions, MappingState
from repro.mapper.transformations import canonicalize_constraints


def make_state(schema):
    return MappingState(
        schema=schema.copy(), options=MappingOptions(), original=schema
    )


class TestSuperfluousConstraintRemoval:
    def test_duplicates_removed(self):
        b = SchemaBuilder("s")
        b.nolot("A").lot("K", char(3))
        b.fact("f", ("A", "x"), ("K", "y"))
        b.unique("f.x").unique("f.x")
        state = make_state(b.build())
        canonicalize_constraints(state)
        assert len(state.schema.uniqueness_constraints()) == 1

    def test_pair_uniqueness_implied_by_single_role(self):
        b = SchemaBuilder("s")
        b.nolot("A").lot("K", char(3))
        b.fact("f", ("A", "x"), ("K", "y"))
        b.unique("f.x", name="SINGLE")
        b.unique("f.x", "f.y", name="PAIR")
        state = make_state(b.build())
        canonicalize_constraints(state)
        assert state.schema.has_constraint("SINGLE")
        assert not state.schema.has_constraint("PAIR")

    def test_pair_uniqueness_kept_without_single(self):
        b = SchemaBuilder("s")
        b.nolot("A").nolot("B")
        b.fact("f", ("A", "x"), ("B", "y"), unique="pair")
        state = make_state(b.build())
        canonicalize_constraints(state)
        assert len(state.schema.uniqueness_constraints()) == 1

    def test_subset_implied_by_equality(self):
        b = SchemaBuilder("s")
        b.nolot("A").lot("K", char(3)).lot("L", char(3))
        b.fact("f", ("A", "x"), ("K", "y"))
        b.fact("g", ("A", "x"), ("L", "y"))
        b.equality(("f", "x"), ("g", "x"), name="EQ")
        b.subset(("f", "x"), ("g", "x"), name="SUB")
        state = make_state(b.build())
        canonicalize_constraints(state)
        assert state.schema.has_constraint("EQ")
        assert not state.schema.has_constraint("SUB")

    def test_independent_subset_kept(self):
        b = SchemaBuilder("s")
        b.nolot("A").lot("K", char(3)).lot("L", char(3))
        b.fact("f", ("A", "x"), ("K", "y"))
        b.fact("g", ("A", "x"), ("L", "y"))
        b.subset(("f", "x"), ("g", "x"), name="SUB")
        state = make_state(b.build())
        canonicalize_constraints(state)
        assert state.schema.has_constraint("SUB")

    def test_total_union_implied_by_total_role(self):
        b = SchemaBuilder("s")
        b.nolot("A").lot("K", char(3)).lot("L", char(3))
        b.fact("f", ("A", "x"), ("K", "y"))
        b.fact("g", ("A", "x2"), ("L", "y"))
        b.total(("f", "x"), name="TR")
        b.total_union("A", ("f", "x"), ("g", "x2"), name="TU")
        state = make_state(b.build())
        canonicalize_constraints(state)
        assert state.schema.has_constraint("TR")
        assert not state.schema.has_constraint("TU")

    def test_total_union_kept_without_covering_total_role(self):
        b = SchemaBuilder("s")
        b.nolot("A").lot("K", char(3)).lot("L", char(3))
        b.fact("f", ("A", "x"), ("K", "y"))
        b.fact("g", ("A", "x2"), ("L", "y"))
        b.total_union("A", ("f", "x"), ("g", "x2"), name="TU")
        state = make_state(b.build())
        canonicalize_constraints(state)
        assert state.schema.has_constraint("TU")

    def test_removals_recorded_in_trace(self):
        b = SchemaBuilder("s")
        b.nolot("A").lot("K", char(3))
        b.fact("f", ("A", "x"), ("K", "y"))
        b.unique("f.x", name="SINGLE")
        b.unique("f.x", "f.y", name="PAIR")
        state = make_state(b.build())
        canonicalize_constraints(state)
        step = [s for s in state.steps
                if s.transformation == "canonicalize-constraints"][0]
        assert "PAIR" in step.detail
        assert "implied by single-role uniqueness" in step.detail

    def test_state_space_unchanged(self):
        """Removed constraints were implied: valid populations of the
        original schema are exactly those of the canonical one."""
        b = SchemaBuilder("s")
        b.nolot("A").lot("K", char(3)).lot("L", char(3))
        b.fact("f", ("A", "x"), ("K", "y"))
        b.fact("g", ("A", "x"), ("L", "y"))
        b.unique("f.x", name="SINGLE")
        b.unique("f.x", "f.y", name="PAIR")
        b.equality(("f", "x"), ("g", "x"), name="EQ")
        b.subset(("f", "x"), ("g", "x"), name="SUB")
        schema = b.build()
        state = make_state(schema)
        canonicalize_constraints(state)
        valid = Population(schema)
        valid.add_fact("f", "a1", "k1")
        valid.add_fact("g", "a1", "l1")
        invalid = valid.copy()
        invalid.add_fact("f", "a1", "k2")  # violates SINGLE
        for population, expected in ((valid, True), (invalid, False)):
            mapped = state.to_canonical(population)
            remapped = Population(state.schema)
            for fact in state.schema.fact_types:
                for pair in mapped.fact_instances(fact.name):
                    remapped.add_fact(fact.name, *pair)
            assert remapped.is_valid() is expected
