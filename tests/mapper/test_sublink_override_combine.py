"""Per-sublink policy overrides, pairwise, and their combine interplay.

Section 4.2.2: the global sublink option "may be overridden for
chosen individual sublink types".  The advisor enumerates every
override combination, so each pairwise combination of the three
policies over figure 6's two sublinks (``Invited_Paper_IS_Paper``,
``Program_Paper_IS_Paper``) is pinned down here against its expected
table shapes, and the combine phase (mapping option 4) is exercised
against each policy of the combined subtype's sublink.
"""

from itertools import product

import pytest

from repro.cris import figure6_schema
from repro.errors import MappingError
from repro.mapper import MappingOptions, NullPolicy, SublinkPolicy, map_schema

INVITED = "Invited_Paper_IS_Paper"
PROGRAM = "Program_Paper_IS_Paper"

#: Expected relation set per (Invited policy, Program policy).
#: TOGETHER folds the subtype's relation away; SEPARATE and INDICATOR
#: keep it (INDICATOR adds the ``Is_<subtype>`` attribute on the
#: super-relation, controlled by a conditional equality constraint).
EXPECTED_TABLES = {
    (SublinkPolicy.SEPARATE, SublinkPolicy.SEPARATE): {
        "Paper", "Invited_Paper", "Program_Paper",
    },
    (SublinkPolicy.SEPARATE, SublinkPolicy.TOGETHER): {
        "Paper", "Invited_Paper",
    },
    (SublinkPolicy.SEPARATE, SublinkPolicy.INDICATOR): {
        "Paper", "Invited_Paper", "Program_Paper",
    },
    (SublinkPolicy.TOGETHER, SublinkPolicy.SEPARATE): {
        "Paper", "Program_Paper",
    },
    (SublinkPolicy.TOGETHER, SublinkPolicy.TOGETHER): {"Paper"},
    (SublinkPolicy.TOGETHER, SublinkPolicy.INDICATOR): {
        "Paper", "Program_Paper",
    },
    (SublinkPolicy.INDICATOR, SublinkPolicy.SEPARATE): {
        "Paper", "Program_Paper",
    },
    (SublinkPolicy.INDICATOR, SublinkPolicy.TOGETHER): {"Paper"},
    (SublinkPolicy.INDICATOR, SublinkPolicy.INDICATOR): {
        "Paper", "Program_Paper",
    },
}

PAIRS = sorted(EXPECTED_TABLES, key=lambda pair: (pair[0].name, pair[1].name))


@pytest.fixture(scope="module")
def schema():
    return figure6_schema()


def _map_with(schema, invited, program, **overrides):
    options = MappingOptions(
        sublink_overrides=((INVITED, invited), (PROGRAM, program)),
        **overrides,
    )
    return map_schema(schema, options)


class TestPairwiseOverrides:
    @pytest.mark.parametrize("invited,program", PAIRS)
    def test_table_set(self, schema, invited, program):
        result = _map_with(schema, invited, program)
        names = {r.name for r in result.relational.relations}
        assert names == EXPECTED_TABLES[(invited, program)]

    @pytest.mark.parametrize("invited,program", PAIRS)
    def test_paper_shape(self, schema, invited, program):
        """The super-relation carries exactly the columns the two
        policies imply: the base facts, an ``Is_Invited_Paper``
        indicator unless Invited stays SEPARATE, and either the
        sublink attribute (Program kept apart) or Program_Paper's
        absorbed facts (TOGETHER)."""
        result = _map_with(schema, invited, program)
        cols = {
            a.name: a.nullable
            for a in result.relational.relation("Paper").attributes
        }
        expected = {
            "Paper_Id": False,
            "Title_of": False,
            "Date_of_submission": True,
        }
        if invited is not SublinkPolicy.SEPARATE:
            # Invited_Paper has no reference of its own: both TOGETHER
            # and INDICATOR must synthesize a membership indicator.
            expected["Is_Invited_Paper"] = False
        if program is SublinkPolicy.TOGETHER:
            expected["Paper_ProgramId_with"] = True
            expected["Person_presenting"] = True
            expected["Session_comprising"] = True
        else:
            expected["Paper_ProgramId_Is"] = True
            if program is SublinkPolicy.INDICATOR:
                expected["Is_Program_Paper"] = False
        assert cols == expected

    @pytest.mark.parametrize("invited,program", PAIRS)
    def test_program_paper_kept_iff_not_together(
        self, schema, invited, program
    ):
        result = _map_with(schema, invited, program)
        names = {r.name for r in result.relational.relations}
        assert ("Program_Paper" in names) == (
            program is not SublinkPolicy.TOGETHER
        )

    def test_override_beats_global_policy(self, schema):
        """A global TOGETHER with a SEPARATE exception keeps exactly
        the excepted subtype's relation."""
        options = MappingOptions(
            sublink_policy=SublinkPolicy.TOGETHER,
            sublink_overrides=((PROGRAM, SublinkPolicy.SEPARATE),),
        )
        result = map_schema(schema, options)
        names = {r.name for r in result.relational.relations}
        assert names == {"Paper", "Program_Paper"}


class TestOverridesMeetCombine:
    """Mapping option 4 applied to the subtype relation each sublink
    policy leaves behind (or not)."""

    @pytest.mark.parametrize(
        "program", [SublinkPolicy.SEPARATE, SublinkPolicy.INDICATOR]
    )
    def test_combine_absorbs_kept_subtype(self, schema, program):
        """SEPARATE and INDICATOR keep Program_Paper; keyed by the
        inherited Paper_Id (NOT IN KEYS), it can be combined into
        Paper, which then holds the absorbed program facts."""
        result = _map_with(
            schema,
            SublinkPolicy.SEPARATE,
            program,
            null_policy=NullPolicy.NOT_IN_KEYS,
            combine_tables=(("Paper", "Program_Paper"),),
        )
        names = {r.name for r in result.relational.relations}
        assert names == {"Paper", "Invited_Paper"}
        paper = result.relational.relation("Paper")
        for absorbed in (
            "Paper_ProgramId_with",
            "Person_presenting",
            "Session_comprising",
        ):
            assert paper.attribute(absorbed).nullable
        # The indicator column survives the combine.
        assert paper.has_attribute("Is_Program_Paper") == (
            program is SublinkPolicy.INDICATOR
        )

    def test_combine_rejected_after_together(self, schema):
        """TOGETHER already folded Program_Paper away; combining the
        no-longer-existing relation must fail loudly."""
        with pytest.raises(MappingError, match="no relation"):
            _map_with(
                schema,
                SublinkPolicy.SEPARATE,
                SublinkPolicy.TOGETHER,
                null_policy=NullPolicy.NOT_IN_KEYS,
                combine_tables=(("Paper", "Program_Paper"),),
            )

    @pytest.mark.parametrize(
        "invited,program",
        [
            (SublinkPolicy.TOGETHER, SublinkPolicy.SEPARATE),
            (SublinkPolicy.INDICATOR, SublinkPolicy.INDICATOR),
        ],
    )
    def test_combined_round_trip(self, schema, invited, program):
        """The state mapping stays lossless through override + combine."""
        from repro.cris import figure6_population

        result = _map_with(
            schema,
            invited,
            program,
            null_policy=NullPolicy.NOT_IN_KEYS,
            combine_tables=(("Paper", "Program_Paper"),),
        )
        population = figure6_population(schema)
        canonical = result.canonicalize(result.state.to_canonical(population))
        database = result.state_map.forward(canonical)
        assert database.is_valid(), [str(v) for v in database.check()][:3]
        assert result.state_map.backward(database) == canonical
