"""Tests for concept descriptions, mapping options and trace records."""

import pytest

from repro.brm import RoleId, SchemaBuilder, SublinkRef, char, numeric
from repro.cris import figure6_schema
from repro.mapper import AppliedStep, MappingOptions, NullPolicy, SublinkPolicy
from repro.mapper.concepts import (
    describe_constraint,
    describe_fact,
    describe_object_type,
    describe_role,
    describe_sublink,
)
from repro.mapper.trace import Provenance


@pytest.fixture(scope="module")
def schema():
    return figure6_schema()


class TestConceptDescriptions:
    def test_object_types(self, schema):
        assert describe_object_type(schema, "Paper") == "NOLOT Paper"
        assert describe_object_type(schema, "Paper_Id") == "LOT Paper_Id"
        assert describe_object_type(schema, "Person") == "LOT-NOLOT Person"

    def test_fact_matches_paper_house_style(self, schema):
        assert describe_fact(schema, "presents") == (
            "FACT WITH ROLE presented_by ON NOLOT Program_Paper AND "
            "ROLE presenting ON LOT-NOLOT Person"
        )

    def test_role(self, schema):
        assert describe_role(schema, RoleId("presents", "presenting")) == (
            "ROLE presenting ON LOT-NOLOT Person"
        )

    def test_sublink_matches_paper_house_style(self, schema):
        assert describe_sublink(schema, "Program_Paper_IS_Paper") == (
            "SUBLINK IS FROM NOLOT Program_Paper TO NOLOT Paper"
        )

    def test_identifier_vs_plain_uniqueness(self, schema):
        reference = next(
            c for c in schema.uniqueness_constraints()
            if c.is_reference and c.roles[0].fact == "Paper_has_Paper_Id"
        )
        assert describe_constraint(schema, reference).startswith("IDENTIFIER :")
        plain = next(
            c for c in schema.uniqueness_constraints()
            if not c.is_reference and c.roles[0].fact == "Paper_has_Title"
        )
        assert describe_constraint(schema, plain).startswith("UNIQUE :")

    def test_total_role_description(self, schema):
        total = next(
            c for c in schema.totals()
            if c.is_total_role and c.items[0].fact == "scheduled"
        )
        assert describe_constraint(schema, total) == (
            "TOTAL : ROLE presented_during ON NOLOT Program_Paper AND "
            "LOT-NOLOT Session"
        )

    def test_set_algebraic_descriptions(self):
        b = SchemaBuilder("s")
        b.nolot("A").nolot("B").nolot("C")
        b.subtype("B", "A").subtype("C", "A")
        b.exclusion("sublink:B_IS_A", "sublink:C_IS_A", name="X1")
        b.lot("K", char(3))
        b.fact("f", ("A", "x"), ("K", "y"))
        b.fact("g", ("A", "x"), ("K", "y2"))
        b.equality(("f", "x"), ("g", "x"), name="E1")
        b.subset(("f", "x"), ("g", "x"), name="S1")
        b.frequency(("f", "y"), 2, 5, name="F1")
        b.values("K", ("A", "B"), name="V1")
        b.total_union("A", ("f", "x"), "sublink:B_IS_A", name="T9")
        built = b.build()
        texts = {
            c.name: describe_constraint(built, c) for c in built.constraints
        }
        assert texts["X1"].startswith("EXCLUSION : SUBLINK")
        assert texts["E1"].startswith("EQUALITY :")
        assert " IN " in texts["S1"]
        assert "FREQUENCY (2..5)" in texts["F1"]
        assert "VALUES OF LOT K" in texts["V1"]
        assert texts["T9"].startswith("TOTAL UNION ON NOLOT A")


class TestMappingOptions:
    def test_policy_for_uses_overrides(self):
        options = MappingOptions(
            sublink_policy=SublinkPolicy.SEPARATE,
            sublink_overrides=(("x", SublinkPolicy.TOGETHER),),
        )
        assert options.policy_for("x") is SublinkPolicy.TOGETHER
        assert options.policy_for("y") is SublinkPolicy.SEPARATE

    def test_with_overrides_copies(self):
        options = MappingOptions()
        changed = options.with_overrides(null_policy=NullPolicy.ALLOWED)
        assert changed.null_policy is NullPolicy.ALLOWED
        assert options.null_policy is NullPolicy.DEFAULT

    def test_preferences_dict(self):
        options = MappingOptions(
            lexical_preferences=(("Person", ("Person_has_Ssn",)),)
        )
        assert options.preferences_dict() == {"Person": ("Person_has_Ssn",)}

    def test_options_are_hashable_value_objects(self):
        assert MappingOptions() == MappingOptions()
        assert hash(MappingOptions()) == hash(MappingOptions())


class TestTraceRecords:
    def test_applied_step_str(self):
        step = AppliedStep(
            "eliminate-sublink",
            "binary-binary",
            "PP_IS_Paper",
            "roles re-played",
            ("LL_EE_1",),
        )
        text = str(step)
        assert "eliminate-sublink" in text
        assert "[lossless: LL_EE_1]" in text

    def test_provenance_deduplicates(self):
        provenance = Provenance()
        provenance.add_table("Paper", "NOLOT Paper", "NOLOT Paper")
        provenance.add_column("Paper", "Title_of", "FACT x", "FACT x")
        provenance.add_constraint("C_KEY$_1", "IDENTIFIER", "IDENTIFIER")
        assert provenance.tables["Paper"] == ["NOLOT Paper"]
        assert provenance.columns[("Paper", "Title_of")] == ["FACT x"]
        assert provenance.constraints["C_KEY$_1"] == ["IDENTIFIER"]

    def test_forward_entries_keep_order(self):
        provenance = Provenance()
        provenance.add_forward("A", "select a")
        provenance.add_forward("B", "select b")
        assert provenance.forward == [("A", "select a"), ("B", "select b")]


class TestScopeOption:
    def test_partial_mapping(self, schema):
        from repro.mapper import map_schema

        result = map_schema(
            schema,
            MappingOptions(
                scope=("Paper", "Paper_Id", "Title", "Date"),
            ),
        )
        names = {r.name for r in result.relational.relations}
        assert names == {"Paper"}
        columns = result.relational.relation("Paper").attribute_names
        assert "Paper_ProgramId_Is" not in columns  # subtree out of scope

    def test_scope_step_recorded(self, schema):
        from repro.mapper import map_schema

        result = map_schema(
            schema, MappingOptions(scope=("Paper", "Paper_Id", "Title"))
        )
        assert any(s.transformation == "restrict-scope" for s in result.steps)
