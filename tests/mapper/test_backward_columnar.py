"""The columnar backward map vs. the row-at-a-time oracle.

``RelationalStateMap.backward_columnar`` rebuilds a canonical
population directly from bulk relation columns;
``RelationalStateMap.backward`` stays the tuple-at-a-time reference.
Both must reconstruct byte-identical states for every database the
forward map can produce — across randomized schema shapes (subtypes
with own identifiers, satellites, rich constraints) and every sublink
policy, INDICATOR included, where subtype membership survives only as
an indicator fact.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.brm.population import ColumnarPopulation
from repro.cris import cris_schema, figure6_schema
from repro.mapper import MappingOptions, map_schema
from repro.workloads import generate_population, generate_schema

from tests.strategies import DEFAULT_SHAPE, OPTION_SETS, RICH_SHAPE


def columns_of(database):
    """Bulk relation columns, the shape ``fetch_columns`` returns."""
    return {
        relation.name: database.fetch_columns(
            relation.name, relation.attribute_names
        )
        for relation in database.schema.relations
    }


def assert_backward_maps_agree(result, population):
    """Both backward directions reconstruct the same canonical state."""
    canonical = result.canonicalize(
        result.state.to_canonical(population), columnar=True
    )
    database = result.state_map.forward(canonical)
    oracle = result.state_map.backward(database)
    reconstructed = result.state_map.backward_columnar(columns_of(database))
    assert reconstructed.state_diff(oracle) == {}
    assert reconstructed == oracle
    assert reconstructed.state_diff(canonical) == {}
    # Seeding the intern table (the harness fast path) must not change
    # the value-level content.
    seeded = result.state_map.backward_columnar(
        columns_of(database), intern_like=canonical
    )
    assert seeded.state_diff(canonical) == {}
    assert seeded == oracle


class TestOracleEquivalence:
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(min_value=0, max_value=200),
        options=st.sampled_from(OPTION_SETS),
    )
    def test_random_schemas(self, seed, options):
        schema = generate_schema(DEFAULT_SHAPE, seed=seed)
        population = generate_population(
            schema, instances_per_type=5, seed=seed
        )
        result = map_schema(schema, options)
        assert_backward_maps_agree(result, population)

    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(seed=st.integers(min_value=0, max_value=200))
    def test_rich_constraint_schemas(self, seed):
        schema = generate_schema(RICH_SHAPE, seed=seed)
        population = generate_population(
            schema, instances_per_type=4, seed=seed
        )
        result = map_schema(schema, MappingOptions())
        assert_backward_maps_agree(result, population)

    def test_figure6_all_option_sets(self):
        schema = figure6_schema()
        for options in OPTION_SETS:
            population = generate_population(
                schema, instances_per_type=6, seed=11
            )
            result = map_schema(schema, options)
            assert_backward_maps_agree(result, population)

    def test_cris_at_scale(self):
        from repro.workloads import generate_bulk_population

        schema = cris_schema()
        population = generate_bulk_population(
            schema, target_rows=5000, seed=7
        )
        result = map_schema(schema, MappingOptions())
        assert_backward_maps_agree(result, population)


class TestSeededInterning:
    def test_seed_intern_from_requires_empty(self):
        import pytest

        from repro.errors import PopulationError

        schema = figure6_schema()
        canonical = ColumnarPopulation(schema)
        canonical.add_instance("Person", "p")
        other = ColumnarPopulation(schema)
        other.add_instance("Person", "q")
        with pytest.raises(PopulationError):
            other.seed_intern_from(canonical)

    def test_seeded_ids_align(self):
        schema = figure6_schema()
        original = ColumnarPopulation(schema)
        original.add_instance("Person", "alice")
        original.add_instance("Person", "bob")
        seeded = ColumnarPopulation(schema)
        seeded.seed_intern_from(original)
        seeded.add_instance("Person", "bob")
        assert seeded.id_of("bob") == original.id_of("bob")
        assert seeded.state_diff(original) == {"Person": 1}
