"""Tests for harder subtype shapes: chains, shared-root diamonds,
unrelated diamonds, mixed policies along a chain."""

import pytest

from repro.brm import Population, SchemaBuilder, char, numeric
from repro.errors import MappingError
from repro.mapper import MappingOptions, SublinkPolicy, map_schema


def chain_schema():
    """A < B < C, each level with one mandatory fact."""
    b = SchemaBuilder("chain")
    b.nolot("C").nolot("B").nolot("A")
    b.lot("CK", char(4))
    b.lot_nolot("V1", char(3)).lot_nolot("V2", char(3)).lot_nolot("V3", char(3))
    b.identifier("C", "CK")
    b.subtype("B", "C").subtype("A", "B")
    b.attribute("C", "V1", fact="cf", total=True)
    b.attribute("B", "V2", fact="bf", total=True)
    b.attribute("A", "V3", fact="af", total=True)
    return b.build()


def chain_population(schema):
    population = Population(schema)
    population.add_fact("C_has_CK", "x1", "K1")
    population.add_fact("cf", "x1", "v")
    population.add_instance("B", "x1")
    population.add_fact("bf", "x1", "v")
    population.add_instance("A", "x1")
    population.add_fact("af", "x1", "v")
    population.add_fact("C_has_CK", "x2", "K2")
    population.add_fact("cf", "x2", "v")
    return population


class TestChains:
    def test_separate_chain(self):
        schema = chain_schema()
        result = map_schema(schema)
        names = {r.name for r in result.relational.relations}
        assert names == {"A", "B", "C"}
        # Each level keyed by the inherited reference, FK to its parent.
        edges = {
            (fk.relation, fk.referenced_relation)
            for fk in result.relational.foreign_keys()
        }
        assert ("B", "C") in edges
        assert ("A", "B") in edges

    def test_together_chain_collapses_fully(self):
        schema = chain_schema()
        result = map_schema(
            schema, MappingOptions(sublink_policy=SublinkPolicy.TOGETHER)
        )
        assert [r.name for r in result.relational.relations] == ["C"]
        c = result.relational.relation("C")
        assert c.attribute("V2_of").nullable
        assert c.attribute("V3_of").nullable

    def test_mixed_policy_chain(self):
        schema = chain_schema()
        result = map_schema(
            schema,
            MappingOptions(
                sublink_overrides=(("A_IS_B", SublinkPolicy.TOGETHER),)
            ),
        )
        names = {r.name for r in result.relational.relations}
        # A absorbed into B; B still separate from C.
        assert names == {"B", "C"}
        assert "V3_of" in result.relational.relation("B").attribute_names

    @pytest.mark.parametrize(
        "policy",
        [SublinkPolicy.SEPARATE, SublinkPolicy.TOGETHER, SublinkPolicy.INDICATOR],
        ids=lambda p: p.name,
    )
    def test_chain_round_trip(self, policy):
        schema = chain_schema()
        population = chain_population(schema)
        assert population.is_valid()
        result = map_schema(schema, MappingOptions(sublink_policy=policy))
        canonical = result.canonicalize(result.state.to_canonical(population))
        database = result.state_map.forward(canonical)
        assert database.is_valid(), [str(v) for v in database.check()][:3]
        assert result.state_map.backward(database) == canonical


class TestDiamonds:
    def test_unrelated_roots_rejected(self):
        b = SchemaBuilder("diamond")
        b.nolot("A").nolot("B").nolot("X")
        b.lot("AK", char(4)).lot("BK", numeric(5))
        b.identifier("A", "AK")
        b.identifier("B", "BK")
        b.subtype("X", "A", name="X_IS_A").subtype("X", "B", name="X_IS_B")
        with pytest.raises(MappingError) as excinfo:
            map_schema(b.build())
        assert "unrelated root supertypes" in str(excinfo.value)

    def test_shared_root_diamond_accepted(self):
        b = SchemaBuilder("vee")
        b.nolot("A").nolot("C").nolot("X")
        b.lot("AK", char(4))
        b.identifier("A", "AK")
        b.subtype("C", "A")
        b.subtype("X", "C", name="X_IS_C").subtype("X", "A", name="X_IS_A")
        result = map_schema(b.build())
        assert {r.name for r in result.relational.relations} == {"A", "C", "X"}

    def test_shared_root_diamond_round_trip(self):
        b = SchemaBuilder("vee")
        b.nolot("A").nolot("C").nolot("X")
        b.lot("AK", char(4)).lot_nolot("V", char(3))
        b.identifier("A", "AK")
        b.subtype("C", "A")
        b.subtype("X", "C", name="X_IS_C").subtype("X", "A", name="X_IS_A")
        b.attribute("X", "V", fact="xf", total=True)
        schema = b.build()
        population = Population(schema)
        population.add_fact("A_has_AK", "a1", "K1")
        population.add_instance("C", "a1")
        population.add_instance("X", "a1")
        population.add_fact("xf", "a1", "v")
        population.add_fact("A_has_AK", "a2", "K2")
        assert population.is_valid()
        result = map_schema(schema)
        canonical = result.canonicalize(result.state.to_canonical(population))
        database = result.state_map.forward(canonical)
        assert database.is_valid()
        assert result.state_map.backward(database) == canonical


class TestSubtypeWithOwnIdentifierUnderChain:
    def test_mid_chain_own_identifier(self):
        # B has its own id: B's relation keyed by it; A (below B)
        # inherits B's scheme.
        b = SchemaBuilder("s")
        b.nolot("C").nolot("B").nolot("A")
        b.lot("CK", char(4)).lot("BK", char(2))
        b.lot_nolot("V", char(3))
        b.identifier("C", "CK")
        b.subtype("B", "C").subtype("A", "B")
        b.identifier("B", "BK")
        b.attribute("B", "V", fact="bf", total=True)
        b.attribute("A", "V", fact="af", total=True)
        schema = b.build()
        result = map_schema(schema)
        # B keyed by its own BK; the sublink stored as BK_Is in C.
        assert result.relational.primary_key("B").columns == ("BK",)
        assert "BK_Is" in result.relational.relation("C").attribute_names
        # A inherits B's scheme (the cheaper CHAR(2)).
        assert result.relational.primary_key("A").columns == ("BK",)

    def test_mid_chain_own_identifier_round_trip(self):
        b = SchemaBuilder("s")
        b.nolot("C").nolot("B").nolot("A")
        b.lot("CK", char(4)).lot("BK", char(2))
        b.lot_nolot("V", char(3))
        b.identifier("C", "CK")
        b.subtype("B", "C").subtype("A", "B")
        b.identifier("B", "BK")
        b.attribute("B", "V", fact="bf", total=True)
        b.attribute("A", "V", fact="af", total=True)
        schema = b.build()
        population = Population(schema)
        population.add_fact("C_has_CK", "x", "K1")
        population.add_instance("B", "x")
        population.add_fact("B_has_BK", "x", "B1")
        population.add_fact("bf", "x", "v")
        population.add_instance("A", "x")
        population.add_fact("af", "x", "v")
        assert population.is_valid()
        result = map_schema(schema)
        canonical = result.canonicalize(result.state.to_canonical(population))
        database = result.state_map.forward(canonical)
        assert database.is_valid(), [str(v) for v in database.check()][:3]
        assert result.state_map.backward(database) == canonical
