"""How surviving binary constraints become relational ones.

Exclusion/equality/subset/total-union constraints either turn into
same-relation CHECKs (the C_DE$/C_EE$/C_CHK$ shapes), cross-relation
view constraints (C_EQ$/C_SUB$), or pseudo-SQL specifications — the
paper's answer to "constraints often considered first class citizens
in the conceptual modelling seem to become pariahs during the
transformation" (section 4).
"""

import pytest

from repro.brm import SchemaBuilder, char, numeric
from repro.mapper import MappingOptions, NullPolicy, SublinkPolicy, map_schema
from repro.relational import (
    CheckConstraint,
    EqualityViewConstraint,
    SubsetViewConstraint,
)


def base_builder():
    b = SchemaBuilder("s")
    b.nolot("Paper").lot("Paper_Id", char(6))
    b.identifier("Paper", "Paper_Id")
    b.lot_nolot("Person", char(30)).lot_nolot("Session", numeric(3))
    b.attribute("Paper", "Person", fact="by")
    b.attribute("Paper", "Session", fact="during")
    return b


class TestSameRelationChecks:
    def test_subset_becomes_dependent_existence(self):
        b = base_builder()
        b.subset(("by", "with"), ("during", "with"))
        result = map_schema(b.build())
        checks = [
            c for c in result.relational.checks("Paper")
            if c.comment == "Dependent Existence"
        ]
        assert len(checks) == 1
        assert checks[0].name.startswith("C_DE$")
        assert checks[0].predicate.columns() == {"Person_of", "Session_of"}

    def test_equality_becomes_equal_existence(self):
        b = base_builder()
        b.equality(("by", "with"), ("during", "with"))
        result = map_schema(b.build())
        checks = [
            c for c in result.relational.checks("Paper")
            if c.comment == "Equal Existence"
        ]
        assert len(checks) == 1
        assert checks[0].name.startswith("C_EE$")

    def test_exclusion_becomes_check(self):
        b = base_builder()
        b.exclusion(("by", "with"), ("during", "with"))
        result = map_schema(b.build())
        checks = [
            c for c in result.relational.checks("Paper")
            if c.comment == "Exclusion"
        ]
        assert len(checks) == 1
        # At most one of the two columns may be present.
        predicate = checks[0].predicate
        assert predicate.evaluate({"Person_of": None, "Session_of": 3})
        assert predicate.evaluate({"Person_of": "x", "Session_of": None})
        assert not predicate.evaluate({"Person_of": "x", "Session_of": 3})

    def test_total_union_becomes_check(self):
        b = base_builder()
        b.total_union("Paper", ("by", "with"), ("during", "with"))
        result = map_schema(b.build())
        checks = [
            c for c in result.relational.checks("Paper")
            if c.comment == "Total Union"
        ]
        assert len(checks) == 1
        predicate = checks[0].predicate
        assert not predicate.evaluate(
            {"Person_of": None, "Session_of": None}
        )
        assert predicate.evaluate({"Person_of": "x", "Session_of": None})

    def test_subset_with_total_superset_is_consumed(self):
        b = base_builder()
        b.total(("during", "with"))
        b.subset(("by", "with"), ("during", "with"))
        result = map_schema(b.build())
        # The superset role covers every row: nothing to check.
        assert result.relational.checks("Paper") == [] or all(
            c.comment != "Dependent Existence"
            for c in result.relational.checks("Paper")
        )


class TestCrossRelationViews:
    def satellite_options(self):
        return MappingOptions(null_policy=NullPolicy.NOT_ALLOWED)

    def test_equality_across_satellites_becomes_view(self):
        b = base_builder()
        b.equality(("by", "with"), ("during", "with"))
        result = map_schema(b.build(), self.satellite_options())
        views = [
            c
            for c in result.relational.view_constraints()
            if isinstance(c, EqualityViewConstraint)
        ]
        assert len(views) == 1
        assert {views[0].left.relation, views[0].right.relation} == {
            "Paper_by",
            "Paper_during",
        }

    def test_subset_across_satellites_becomes_view(self):
        b = base_builder()
        b.subset(("by", "with"), ("during", "with"))
        result = map_schema(b.build(), self.satellite_options())
        views = [
            c
            for c in result.relational.view_constraints()
            if isinstance(c, SubsetViewConstraint)
        ]
        assert len(views) == 1
        assert views[0].name.startswith("C_SUB$")

    def test_exclusion_across_relations_degrades_to_pseudo(self):
        b = base_builder()
        b.exclusion(("by", "with"), ("during", "with"))
        result = map_schema(b.build(), self.satellite_options())
        assert any(
            "EXCLUSION" in p.text for p in result.pseudo_constraints
        )

    def test_total_role_on_many_to_many_side_becomes_subset_view(self):
        b = SchemaBuilder("s")
        b.nolot("Paper").lot("Paper_Id", char(6)).lot_nolot("Person", char(30))
        b.identifier("Paper", "Paper_Id")
        b.fact("authors", ("Paper", "written_by"), ("Person", "author_of"),
               unique="pair", total="first")
        result = map_schema(b.build())
        views = [
            c
            for c in result.relational.view_constraints()
            if isinstance(c, SubsetViewConstraint)
        ]
        assert len(views) == 1
        assert views[0].subset.relation == "Paper"
        assert views[0].superset.relation == "authors"


class TestSublinkConstraints:
    def schema_with_subtypes(self):
        b = SchemaBuilder("s")
        b.nolot("Paper").nolot("Invited").nolot("Rejected")
        b.lot("Paper_Id", char(6))
        b.identifier("Paper", "Paper_Id")
        b.subtype("Invited", "Paper").subtype("Rejected", "Paper")
        b.exclusion("sublink:Invited_IS_Paper", "sublink:Rejected_IS_Paper")
        return b.build()

    def test_exclusion_of_indicator_subtypes_becomes_check(self):
        result = map_schema(
            self.schema_with_subtypes(),
            MappingOptions(sublink_policy=SublinkPolicy.INDICATOR),
        )
        checks = [
            c for c in result.relational.checks("Paper")
            if c.comment == "Exclusion"
        ]
        assert len(checks) == 1
        predicate = checks[0].predicate
        assert not predicate.evaluate(
            {"Is_Invited": "Y", "Is_Rejected": "Y"}
        )
        assert predicate.evaluate({"Is_Invited": "Y", "Is_Rejected": "N"})

    def test_exclusion_of_separate_subtypes_is_pseudo(self):
        result = map_schema(self.schema_with_subtypes())
        assert any(
            "EXCLUSION" in p.text for p in result.pseudo_constraints
        ) or any(
            c.comment == "Exclusion" for c in result.relational.checks()
        )

    def test_indicator_presence_in_cross_relation_equality(self):
        # Equality between an INDICATOR subtype and a role in its
        # sub-relation: the view over the super must test the flag,
        # not mere non-NULLness.
        from repro.brm import Population

        b = SchemaBuilder("s")
        b.nolot("Paper").nolot("A")
        b.lot("K", char(3)).lot_nolot("V", char(3))
        b.identifier("Paper", "K")
        b.subtype("A", "Paper")
        b.attribute("A", "V", fact="af")
        b.equality("sublink:A_IS_Paper", ("af", "with"), name="EQ")
        schema = b.build()
        result = map_schema(
            schema, MappingOptions(sublink_policy=SublinkPolicy.INDICATOR)
        )
        views = [
            c
            for c in result.relational.view_constraints()
            if getattr(c, "comment", "") == "role equality"
        ]
        assert len(views) == 1
        assert "Is_A = 'Y'" in views[0].left.where.render()
        population = Population(schema)
        population.add_fact("Paper_has_K", "p1", "K1")
        population.add_fact("Paper_has_K", "p2", "K2")
        population.add_instance("A", "p1")
        population.add_fact("af", "p1", "v")
        canonical = result.canonicalize(result.state.to_canonical(population))
        database = result.state_map.forward(canonical)
        assert database.is_valid()

    def test_frequency_constraint_is_pseudo(self):
        b = SchemaBuilder("s")
        b.nolot("Committee").lot("CName", char(20)).lot_nolot("Person", char(30))
        b.identifier("Committee", "CName")
        b.fact("member", ("Committee", "having"), ("Person", "serving"))
        b.unique(("member", "having"), ("member", "serving"))
        b.frequency(("member", "having"), 2, 5)
        result = map_schema(b.build())
        assert any("FREQUENCY" in p.text for p in result.pseudo_constraints)


class TestValueConstraints:
    def test_value_constraint_becomes_in_check(self):
        b = SchemaBuilder("s")
        b.nolot("Paper").lot("Paper_Id", char(6)).lot("Status", char(1))
        b.identifier("Paper", "Paper_Id")
        b.attribute("Paper", "Status", fact="status_of", total=True)
        b.values("Status", ("A", "R", "P"))
        result = map_schema(b.build())
        checks = [
            c for c in result.relational.checks("Paper")
            if c.comment == "Value Restriction"
        ]
        assert len(checks) == 1
        assert checks[0].predicate.evaluate({"Status_of": "A"})
        assert not checks[0].predicate.evaluate({"Status_of": "X"})

    def test_nullable_column_value_check_accepts_null(self):
        b = SchemaBuilder("s")
        b.nolot("Paper").lot("Paper_Id", char(6)).lot("Status", char(1))
        b.identifier("Paper", "Paper_Id")
        b.attribute("Paper", "Status", fact="status_of")  # optional
        b.values("Status", ("A", "R"))
        result = map_schema(b.build())
        check = [
            c for c in result.relational.checks("Paper")
            if c.comment == "Value Restriction"
        ][0]
        assert check.predicate.evaluate({"Status_of": None})
