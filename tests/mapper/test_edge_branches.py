"""Edge-branch tests: degraded constraints, infeasible candidates,
multi-item view constraints, collision handling."""

import pytest

from repro.brm import Population, SchemaBuilder, char, numeric
from repro.engine.cost import TableStatistics
from repro.mapper import MappingOptions, NullPolicy, map_schema
from repro.mapper.expert import (
    QueryPattern,
    QueryProfile,
    evaluate_candidate,
    recommend_options,
)
from repro.relational import EqualityViewConstraint


class TestDegradedConstraints:
    def test_three_way_equality_across_relations(self):
        b = SchemaBuilder("s")
        b.nolot("P").lot("K", char(3))
        b.identifier("P", "K")
        b.lot_nolot("A", char(3)).lot_nolot("B", char(3)).lot_nolot("C", char(3))
        b.attribute("P", "A", fact="fa")
        b.attribute("P", "B", fact="fb")
        b.attribute("P", "C", fact="fc")
        b.equality(("fa", "with"), ("fb", "with"), ("fc", "with"))
        result = map_schema(
            b.build(), MappingOptions(null_policy=NullPolicy.NOT_ALLOWED)
        )
        views = [
            c
            for c in result.relational.view_constraints()
            if isinstance(c, EqualityViewConstraint)
        ]
        # Three equal populations in three satellites need two pairwise
        # equality views.
        assert len(views) == 2

    def test_three_way_equality_round_trip(self):
        b = SchemaBuilder("s")
        b.nolot("P").lot("K", char(3))
        b.identifier("P", "K")
        b.lot_nolot("A", char(3)).lot_nolot("B", char(3))
        b.attribute("P", "A", fact="fa")
        b.attribute("P", "B", fact="fb")
        b.equality(("fa", "with"), ("fb", "with"))
        schema = b.build()
        population = Population(schema)
        population.add_fact("P_has_K", "p1", "K1")
        population.add_fact("fa", "p1", "a")
        population.add_fact("fb", "p1", "b")
        population.add_fact("P_has_K", "p2", "K2")
        result = map_schema(
            schema, MappingOptions(null_policy=NullPolicy.NOT_ALLOWED)
        )
        canonical = result.canonicalize(result.state.to_canonical(population))
        database = result.state_map.forward(canonical)
        assert database.is_valid()
        assert result.state_map.backward(database) == canonical

    def test_external_uniqueness_across_relations_is_pseudo(self):
        b = SchemaBuilder("s")
        b.nolot("P").lot("K", char(3))
        b.identifier("P", "K")
        b.lot_nolot("A", char(3)).lot_nolot("B", char(3))
        b.attribute("P", "A", fact="fa")
        b.attribute("P", "B", fact="fb")
        b.unique(("fa", "of"), ("fb", "of"), name="EXT")
        result = map_schema(
            b.build(), MappingOptions(null_policy=NullPolicy.NOT_ALLOWED)
        )
        assert any(
            "external uniqueness" in p.text for p in result.pseudo_constraints
        )

    def test_external_uniqueness_same_relation_becomes_candidate_key(self):
        b = SchemaBuilder("s")
        b.nolot("P").lot("K", char(3))
        b.identifier("P", "K")
        b.lot_nolot("A", char(3)).lot_nolot("B", char(3))
        b.attribute("P", "A", fact="fa", total=True)
        b.attribute("P", "B", fact="fb", total=True)
        b.unique(("fa", "of"), ("fb", "of"), name="EXT")
        result = map_schema(b.build())
        candidates = result.relational.candidate_keys("P")
        assert ("A_of", "B_of") in [c.columns for c in candidates]


class TestColumnCollisions:
    def test_two_facts_to_same_target_disambiguated(self):
        b = SchemaBuilder("s")
        b.nolot("P").lot("K", char(3)).lot_nolot("Person", char(30))
        b.identifier("P", "K")
        b.attribute("P", "Person", fact="author")
        b.attribute("P", "Person", fact="editor")
        result = map_schema(b.build())
        names = result.relational.relation("P").attribute_names
        # Both columns land; the second gets a numeric suffix.
        person_columns = [n for n in names if n.startswith("Person_of")]
        assert len(person_columns) == 2
        assert len(set(person_columns)) == 2

    def test_collision_round_trip(self):
        b = SchemaBuilder("s")
        b.nolot("P").lot("K", char(3)).lot_nolot("Person", char(30))
        b.identifier("P", "K")
        b.attribute("P", "Person", fact="author")
        b.attribute("P", "Person", fact="editor")
        schema = b.build()
        population = Population(schema)
        population.add_fact("P_has_K", "p1", "K1")
        population.add_fact("author", "p1", "Ann")
        population.add_fact("editor", "p1", "Bob")
        result = map_schema(schema)
        canonical = result.canonicalize(result.state.to_canonical(population))
        database = result.state_map.forward(canonical)
        back = result.state_map.backward(database)
        assert back == canonical


class TestExpertEdgeCases:
    def test_infeasible_candidate_reported_not_raised(self):
        from repro.cris import figure6_schema

        schema = figure6_schema()
        profile = QueryProfile(
            (QueryPattern("Paper", ("no_such_fact",), frequency=1.0),)
        )
        evaluation = evaluate_candidate(
            schema,
            "default",
            MappingOptions(),
            profile,
            TableStatistics(),
        )
        assert not evaluation.feasible
        assert "no_such_fact" in (evaluation.error or "")

    def test_all_infeasible_raises(self):
        from repro.cris import figure6_schema
        from repro.errors import MappingError

        schema = figure6_schema()
        profile = QueryProfile(
            (QueryPattern("Paper", ("no_such_fact",), frequency=1.0),)
        )
        with pytest.raises(MappingError):
            recommend_options(schema, profile)

    def test_render_marks_infeasible(self):
        from repro.cris import figure6_schema

        schema = figure6_schema()
        profile = QueryProfile(
            (
                QueryPattern("Paper", ("Paper_has_Title",), frequency=1.0),
                # This one only exists after TOGETHER elimination at the
                # Paper level via inheritance; it is feasible everywhere,
                # so craft an infeasible one with a bogus object type.
                QueryPattern("Paper", ("Paper_has_Title",), frequency=1.0),
            )
        )
        recommendation = recommend_options(schema, profile)
        assert "<= recommended" in recommendation.render()
