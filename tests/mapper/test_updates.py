"""Tests for conceptual transactions through the inverse mapping."""

import pytest

from repro.cris import figure6_population, figure6_schema
from repro.errors import MappingError, PopulationError
from repro.mapper import MappingOptions, NullPolicy, SublinkPolicy, map_schema
from repro.relational import Compare
from repro.ridl import (
    AddToSubtype,
    AssertFact,
    ConceptualTransaction,
    RemoveInstance,
    RetractFact,
    apply_transaction,
)

ALL_OPTIONS = [
    MappingOptions(),
    MappingOptions(null_policy=NullPolicy.NOT_ALLOWED),
    MappingOptions(sublink_policy=SublinkPolicy.INDICATOR),
]
IDS = ["alt1", "alt2", "indicator"]


@pytest.fixture(scope="module")
def schema():
    return figure6_schema()


def fresh_database(schema, options):
    result = map_schema(schema, options)
    return result, result.forward(figure6_population(schema))


class TestAssertRetract:
    @pytest.mark.parametrize("options", ALL_OPTIONS, ids=IDS)
    def test_assert_new_paper(self, schema, options):
        result, database = fresh_database(schema, options)
        updated = apply_transaction(
            result,
            database,
            ConceptualTransaction(
                (
                    AssertFact("Paper_has_Paper_Id", "P9", "P9"),
                    AssertFact("Paper_has_Title", "P9", "A New Paper"),
                )
            ),
        )
        assert updated.is_valid()
        rows = updated.select("Paper", Compare("Paper_Id", "=", "P9"))
        assert rows and rows[0]["Title_of"] == "A New Paper"
        # The original state is untouched (atomicity).
        assert not database.select("Paper", Compare("Paper_Id", "=", "P9"))

    @pytest.mark.parametrize("options", ALL_OPTIONS, ids=IDS)
    def test_retract_optional_fact(self, schema, options):
        result, database = fresh_database(schema, options)
        updated = apply_transaction(
            result,
            database,
            ConceptualTransaction(
                (RetractFact("submission", "P1", "1988-10-01"),)
            ),
        )
        assert updated.is_valid()
        back = result.state_map.backward(updated)
        assert back.fact_instances("submission") == {("P3", "1988-12-24")}

    def test_invalid_transaction_rejected_atomically(self, schema):
        result, database = fresh_database(schema, MappingOptions())
        with pytest.raises(PopulationError):
            apply_transaction(
                result,
                database,
                ConceptualTransaction(
                    # A second title for P1 violates the uniqueness bar.
                    (AssertFact("Paper_has_Title", "P1", "Another Title"),)
                ),
            )
        assert database.is_valid()  # untouched

    def test_retracting_missing_fact_fails(self, schema):
        result, database = fresh_database(schema, MappingOptions())
        with pytest.raises(PopulationError):
            apply_transaction(
                result,
                database,
                ConceptualTransaction(
                    (RetractFact("submission", "P2", "nope"),)
                ),
            )


class TestSubtypeMembership:
    @pytest.mark.parametrize("options", ALL_OPTIONS, ids=IDS)
    def test_paper_joins_programme(self, schema, options):
        result, database = fresh_database(schema, options)
        updated = apply_transaction(
            result,
            database,
            ConceptualTransaction(
                (
                    AddToSubtype("Program_Paper", "P3"),
                    AssertFact(
                        "Program_Paper_has_Paper_ProgramId", "P3", "A3"
                    ),
                    AssertFact("scheduled", "P3", 103),
                )
            ),
        )
        assert updated.is_valid()
        back = result.state_map.backward(updated)
        assert "P3" in back.instances("Program_Paper")

    def test_membership_without_mandatory_facts_rejected(self, schema):
        result, database = fresh_database(schema, MappingOptions())
        with pytest.raises(PopulationError):
            apply_transaction(
                result,
                database,
                ConceptualTransaction(
                    (AddToSubtype("Program_Paper", "P3"),)  # no id/session
                ),
            )

    def test_together_still_accepts_membership_updates(self, schema):
        # Even though TOGETHER eliminated the subtype relationally, the
        # update is phrased on the original schema: the full inverse
        # mapping makes it land as the indicator/anchor columns.
        result = map_schema(
            schema, MappingOptions(sublink_policy=SublinkPolicy.TOGETHER)
        )
        database = result.forward(figure6_population(schema))
        updated = apply_transaction(
            result,
            database,
            ConceptualTransaction(
                (
                    AddToSubtype("Program_Paper", "P3"),
                    AssertFact(
                        "Program_Paper_has_Paper_ProgramId", "P3", "A3"
                    ),
                    AssertFact("scheduled", "P3", 103),
                )
            ),
        )
        assert updated.is_valid()
        row = updated.select("Paper", Compare("Paper_Id", "=", "P3"))[0]
        assert row["Paper_ProgramId_with"] == "A3"
        assert row["Session_comprising"] == 103


class TestRemoveInstance:
    def test_remove_paper_everywhere(self, schema):
        result, database = fresh_database(schema, MappingOptions())
        updated = apply_transaction(
            result,
            database,
            ConceptualTransaction((RemoveInstance("Paper", "P3"),)),
        )
        assert updated.is_valid()
        assert not updated.select("Paper", Compare("Paper_Id", "=", "P3"))

    def test_remove_program_membership_only(self, schema):
        # RemoveInstance on the subtype retracts the subtype's facts
        # automatically but keeps the Paper-level facts intact.
        result, database = fresh_database(schema, MappingOptions())
        updated = apply_transaction(
            result,
            database,
            ConceptualTransaction((RemoveInstance("Program_Paper", "P2"),)),
        )
        assert updated.is_valid()
        # Still a Paper, no longer a Program_Paper.
        assert updated.select("Paper", Compare("Paper_Id", "=", "P2"))
        assert not updated.select(
            "Program_Paper", Compare("Paper_ProgramId", "=", "A2")
        )

    def test_remove_unknown_instance_fails(self, schema):
        result, database = fresh_database(schema, MappingOptions())
        with pytest.raises(PopulationError):
            apply_transaction(
                result,
                database,
                ConceptualTransaction((RemoveInstance("Paper", "P99"),)),
            )


class TestTransactionShape:
    def test_empty_transaction_rejected(self):
        with pytest.raises(MappingError):
            ConceptualTransaction(())

    def test_unknown_update_rejected(self, schema):
        result, database = fresh_database(schema, MappingOptions())
        with pytest.raises(MappingError):
            apply_transaction(
                result, database, ConceptualTransaction(("garbage",))
            )
