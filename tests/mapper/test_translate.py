"""Tests for data translation between alternative designs (§4.1)."""

import itertools

import pytest

from repro.brm import SchemaBuilder, char
from repro.cris import figure6_population, figure6_schema
from repro.errors import MappingError
from repro.mapper import MappingOptions, NullPolicy, SublinkPolicy, map_schema
from repro.mapper.translate import translate_state

ALTERNATIVES = {
    "alt1": MappingOptions(),
    "alt2": MappingOptions(null_policy=NullPolicy.NOT_ALLOWED),
    "alt3": MappingOptions(
        sublink_overrides=(("Invited_Paper_IS_Paper", SublinkPolicy.INDICATOR),)
    ),
    "alt4": MappingOptions(sublink_policy=SublinkPolicy.TOGETHER),
}


@pytest.fixture(scope="module")
def results():
    schema = figure6_schema()
    return schema, {
        name: map_schema(schema, options)
        for name, options in ALTERNATIVES.items()
    }


class TestTranslation:
    @pytest.mark.parametrize(
        "source_name,target_name",
        list(itertools.permutations(ALTERNATIVES, 2)),
        ids=lambda v: v,
    )
    def test_every_pair_translates(self, results, source_name, target_name):
        schema, mapped = results
        source = mapped[source_name]
        target = mapped[target_name]
        database = source.forward(figure6_population(schema))
        translated = translate_state(source, database, target)
        assert translated.is_valid()
        # Direct mapping and translated mapping agree exactly.
        direct = target.forward(figure6_population(schema))
        assert translated == direct

    def test_round_trip_translation_is_identity(self, results):
        schema, mapped = results
        alt1, alt4 = mapped["alt1"], mapped["alt4"]
        database = alt1.forward(figure6_population(schema))
        there = translate_state(alt1, database, alt4)
        back = translate_state(alt4, there, alt1)
        assert back == database

    def test_different_schemas_rejected(self, results):
        schema, mapped = results
        b = SchemaBuilder("other")
        b.nolot("X").lot("K", char(3))
        b.identifier("X", "K")
        other = map_schema(b.build())
        database = mapped["alt1"].forward(figure6_population(schema))
        with pytest.raises(MappingError):
            translate_state(mapped["alt1"], database, other)
