"""Tests for the plan synthesis: anchors, naming, m:n facts,
satellites, fact ownership and the NULL ALLOWED disjunctive case."""

import pytest

from repro.brm import SchemaBuilder, char, numeric
from repro.errors import AnalysisError, MappingError
from repro.mapper import MappingOptions, NullPolicy, map_schema
from repro.mapper.naive import naive_map


class TestAnchorsAndNaming:
    def test_lot_nolot_without_facts_gets_no_relation(self):
        b = SchemaBuilder("s")
        b.nolot("Paper").lot("Paper_Id", char(6)).lot_nolot("Person", char(30))
        b.identifier("Paper", "Paper_Id")
        b.attribute("Paper", "Person", fact="by")
        result = map_schema(b.build())
        assert {r.name for r in result.relational.relations} == {"Paper"}

    def test_lot_nolot_with_facts_gets_anchor(self):
        b = SchemaBuilder("s")
        b.lot_nolot("Person", char(30)).lot("Age", numeric(3))
        b.attribute("Person", "Age", fact="aged", total=True)
        result = map_schema(b.build())
        person = result.relational.relation("Person")
        assert person.attribute_names == ("Person", "Age_of")
        assert result.relational.primary_key("Person").columns == ("Person",)

    def test_key_column_named_after_lot(self):
        b = SchemaBuilder("s")
        b.nolot("Paper").lot("Paper_Id", char(6))
        b.identifier("Paper", "Paper_Id")
        result = map_schema(b.build())
        assert result.relational.relation("Paper").attribute_names == ("Paper_Id",)

    def test_fact_column_named_target_plus_far_role(self):
        b = SchemaBuilder("s")
        b.nolot("Paper").lot("Paper_Id", char(6)).lot("Title", char(50))
        b.identifier("Paper", "Paper_Id")
        b.attribute("Paper", "Title", owner_role="with", target_role="of",
                    total=True)
        result = map_schema(b.build())
        assert "Title_of" in result.relational.relation("Paper").attribute_names

    def test_alternate_identifier_becomes_candidate_key(self):
        b = SchemaBuilder("s")
        b.nolot("Person").lot("Ssn", numeric(9)).lot("Badge", char(8))
        b.identifier("Person", "Ssn")
        b.identifier("Person", "Badge")
        result = map_schema(b.build())
        person = result.relational.relation("Person")
        assert result.relational.primary_key("Person").columns == ("Ssn",)
        candidates = result.relational.candidate_keys("Person")
        assert ("Badge_with",) in [c.columns for c in candidates]
        # A non-chosen identifier is total, hence NOT NULL.
        assert not person.attribute("Badge_with").nullable

    def test_compound_reference_key(self):
        b = SchemaBuilder("s")
        b.nolot("Building").lot("Street", char(20)).lot("Nr", numeric(4))
        b.attribute("Building", "Street", fact="on", total=True)
        b.attribute("Building", "Nr", fact="at", total=True)
        b.unique(("on", "of"), ("at", "of"))
        result = map_schema(b.build())
        building = result.relational.relation("Building")
        assert result.relational.primary_key("Building").columns == (
            "Street",
            "Nr",
        )
        assert building.attribute_names == ("Street", "Nr")

    def test_nested_reference_through_nolot(self):
        b = SchemaBuilder("s")
        b.nolot("Talk").nolot("Paper").lot("Paper_Id", char(6))
        b.lot_nolot("Room", char(8))
        b.identifier("Paper", "Paper_Id")
        b.identifier("Talk", "Paper", fact="talk_on")
        b.attribute("Talk", "Room", fact="held_in", total=True)
        result = map_schema(b.build())
        talk = result.relational.relation("Talk")
        assert result.relational.primary_key("Talk").columns == ("Paper_Id",)
        # The Talk key references the Paper relation.
        fks = result.relational.foreign_keys("Talk")
        assert any(fk.referenced_relation == "Paper" for fk in fks)
        assert "Room_of" in talk.attribute_names


class TestFactPlacement:
    def test_one_to_one_fact_placed_once_on_total_side(self):
        b = SchemaBuilder("s")
        b.nolot("Person").nolot("Desk")
        b.lot("P_Id", char(4)).lot("D_Id", char(4))
        b.identifier("Person", "P_Id")
        b.identifier("Desk", "D_Id")
        b.fact("assigned", ("Person", "using"), ("Desk", "used_by"),
               unique="both", total="second")
        result = map_schema(b.build())
        desk = result.relational.relation("Desk")
        person = result.relational.relation("Person")
        # Placed on Desk (the total side): NOT NULL column there only.
        placed_on_desk = any("using" in n or "P_Id" in n
                             for n in desk.attribute_names if n != "D_Id")
        placed_on_person = any("used_by" in n or "D_Id" in n
                               for n in person.attribute_names if n != "P_Id")
        assert placed_on_desk and not placed_on_person

    def test_many_to_many_gets_own_relation(self):
        b = SchemaBuilder("s")
        b.nolot("Paper").lot("Paper_Id", char(6)).lot_nolot("Person", char(30))
        b.identifier("Paper", "Paper_Id")
        b.fact("authors", ("Paper", "written_by"), ("Person", "author_of"),
               unique="pair")
        result = map_schema(b.build())
        authors = result.relational.relation("authors")
        assert authors.attribute_names == (
            "Paper_Id_written_by",
            "Person_author_of",
        )
        assert result.relational.primary_key("authors").columns == (
            "Paper_Id_written_by",
            "Person_author_of",
        )
        fks = result.relational.foreign_keys("authors")
        assert any(fk.referenced_relation == "Paper" for fk in fks)

    def test_ring_fact_columns_distinct(self):
        b = SchemaBuilder("s")
        b.lot_nolot("Person", char(30))
        b.fact("knows", ("Person", "knower"), ("Person", "known"),
               unique="pair")
        result = map_schema(b.build())
        knows = result.relational.relation("knows")
        assert knows.attribute_names == ("Person_knower", "Person_known")

    def test_functional_ring_fact(self):
        b = SchemaBuilder("s")
        b.lot_nolot("Person", char(30)).lot("Age", numeric(3))
        b.attribute("Person", "Age", fact="aged", total=True)
        b.fact("boss", ("Person", "managed"), ("Person", "manages"),
               unique="first")
        result = map_schema(b.build())
        person = result.relational.relation("Person")
        assert "Person_manages" in person.attribute_names
        assert person.attribute("Person_manages").nullable
        fks = result.relational.foreign_keys("Person")
        assert any(fk.referenced_relation == "Person" for fk in fks)

    def test_fact_unique_on_lot_side_only(self):
        # Each Title belongs to one Paper, but a Paper may have many
        # titles: the fact cannot live in any anchor.
        b = SchemaBuilder("s")
        b.nolot("Paper").lot("Paper_Id", char(6)).lot("Title", char(50))
        b.identifier("Paper", "Paper_Id")
        b.fact("titled", ("Paper", "named_by"), ("Title", "names"),
               unique="second")
        result = map_schema(b.build())
        titled = result.relational.relation("titled")
        assert result.relational.primary_key("titled").columns == (
            "Title_names",
        )


class TestNullAllowedDisjunctive:
    def schema(self):
        # A Part is identified either by a DrawingNr or by a VendorCode
        # — a non-homogeneous lexical representation (section 4.2.1).
        b = SchemaBuilder("s")
        b.nolot("Part").lot("DrawingNr", char(8)).lot("VendorCode", char(10))
        b.fact("drawn", ("Part", "drawn_as"), ("DrawingNr", "drawing_of"),
               unique="both")
        b.fact("vended", ("Part", "vended_as"), ("VendorCode", "code_of"),
               unique="both")
        b.total_union("Part", ("drawn", "drawn_as"), ("vended", "vended_as"))
        return b.build()

    def test_blocked_without_null_allowed(self):
        with pytest.raises(AnalysisError):
            map_schema(self.schema())

    def test_null_allowed_maps_with_nullable_key(self):
        result = map_schema(
            self.schema(), MappingOptions(null_policy=NullPolicy.ALLOWED)
        )
        part = result.relational.relation("Part")
        assert set(part.attribute_names) == {
            "DrawingNr_drawn_as",
            "VendorCode_vended_as",
        }
        # Entity Integrity Rule deliberately waived: nullable PK.
        pk = result.relational.primary_key("Part")
        assert pk is not None
        assert part.attribute(pk.columns[0]).nullable

    def test_each_scheme_is_a_candidate_key(self):
        result = map_schema(
            self.schema(), MappingOptions(null_policy=NullPolicy.ALLOWED)
        )
        keys = result.relational.keys_of("Part")
        assert ("DrawingNr_drawn_as",) in keys
        assert ("VendorCode_vended_as",) in keys

    def test_at_least_one_scheme_check(self):
        result = map_schema(
            self.schema(), MappingOptions(null_policy=NullPolicy.ALLOWED)
        )
        checks = result.relational.checks("Part")
        assert any(
            c.predicate.columns()
            == {"DrawingNr_drawn_as", "VendorCode_vended_as"}
            for c in checks
        )

    def test_round_trip_with_partial_identities(self):
        from repro.brm import Population

        schema = self.schema()
        result = map_schema(
            schema, MappingOptions(null_policy=NullPolicy.ALLOWED)
        )
        population = Population(schema)
        population.add_fact("drawn", "a", "D1")
        population.add_fact("vended", "a", "V1")
        population.add_fact("drawn", "b", "D2")  # drawing only
        population.add_fact("vended", "c", "V3")  # vendor code only
        canonical = result.canonicalize(result.state.to_canonical(population))
        database = result.state_map.forward(canonical)
        assert database.is_valid(), [str(v) for v in database.check()]
        assert database.count("Part") == 3
        assert result.state_map.backward(database) == canonical

    def test_naive_algorithm_cannot_handle_it(self):
        from repro.errors import NotReferableError

        with pytest.raises(NotReferableError):
            naive_map(self.schema())
