"""Reverse engineering: DDL → BRM lifting and the differential fixpoint.

The contract under test (see ``docs/REVERSE.md``): for any schema S
the forward mapper can emit, ``lift(emit(S))`` produces a BRM schema
and options whose remap is a *fixpoint* — one round may canonicalize
the DDL, the second round must reproduce it byte-for-byte — while the
implication engine saturates both lifts to the same closure and
executor populations validate identically on source and lift.

The round-trip fuzzer at the bottom is the standing CI leg; scale it
with ``REVERSE_FUZZ_EXAMPLES`` (the CI job runs ≥200).
"""

import io
import json
import os

from hypothesis import HealthCheck, given, seed as hypothesis_seed, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.cris import cris_schema
from repro.dsl import parse, to_dsl
from repro.mapper import (
    MappingOptions,
    NullPolicy,
    SublinkPolicy,
    check_fixpoint,
    lift_ddl,
    map_schema,
)
from repro.workloads import SchemaShape, generate_schema

from tests.strategies import (
    FULL_SHAPE,
    OPTION_SETS,
    dialects,
    mapping_options,
    shaped_schemas,
)


def roundtrip(schema, options=MappingOptions(), dialect="sql2"):
    return lift_ddl(map_schema(schema, options).sql(dialect), dialect)


class TestLift:
    def test_cris_lifts_to_mappable_schema(self):
        lifted = roundtrip(cris_schema())
        assert lifted.schema.object_types
        assert lifted.schema.fact_types
        # The lifted schema maps again without error, under the
        # options the lift inferred.
        remapped = map_schema(lifted.schema, lifted.options)
        assert remapped.relational.relations

    def test_lift_is_deterministic(self):
        ddl = map_schema(cris_schema(), MappingOptions()).sql("sql2")
        first, second = lift_ddl(ddl), lift_ddl(ddl)
        assert to_dsl(first.schema) == to_dsl(second.schema)
        assert first.options == second.options

    def test_lifted_schema_parses_as_dsl(self):
        lifted = roundtrip(cris_schema())
        assert parse(to_dsl(lifted.schema)) == lifted.schema

    def test_provenance_covers_every_object_type(self):
        lifted = roundtrip(cris_schema())
        recorded = {e.element for e in lifted.report.entries}
        for object_type in lifted.schema.object_types:
            assert object_type.name in recorded

    def test_provenance_names_source_clauses(self):
        lifted = roundtrip(cris_schema())
        entries = lifted.report.provenance_of("Paper")
        assert entries
        assert any("CREATE TABLE" in e.clause for e in entries)

    def test_subtypes_survive_the_lift(self):
        schema = generate_schema(FULL_SHAPE, seed=13)
        lifted = roundtrip(schema)
        assert len(lifted.schema.sublinks) == len(schema.sublinks)

    def test_bare_sublink_reconstructed_from_is_columns(self):
        # Under TOGETHER + NOT_IN_KEYS a subtype with its own
        # identifier survives only as nullable `<LOT>_Is` candidate
        # keys on the supertype; the lift must rebuild the subtype
        # entity from those bare columns.
        options = MappingOptions(
            sublink_policy=SublinkPolicy.TOGETHER,
            null_policy=NullPolicy.NOT_IN_KEYS,
        )
        lifted = roundtrip(cris_schema(), options)
        assert any(
            s.supertype == "Paper" for s in lifted.schema.sublinks
        )

    def test_together_merges_subtypes_but_keeps_the_fixpoint(self):
        # Plain TOGETHER without own identifiers is genuinely
        # ambiguous at the DDL level — the `_Is` columns lift to
        # boolean facts, not sublinks — but the round trip must still
        # reproduce the DDL byte-for-byte.
        schema = generate_schema(
            SchemaShape(entity_types=5, subtype_ratio=0.6), seed=7
        )
        options = MappingOptions(sublink_policy=SublinkPolicy.TOGETHER)
        report = check_fixpoint(schema, options)
        assert report.ok, report.describe()

    def test_dropped_clauses_are_reported_not_lost(self):
        # Conditional-equality pseudo comments cannot be lifted into
        # DDL-expressible constraints; a NOT_IN_KEYS mapping of a
        # subset-rich schema produces some.  The report must say so.
        schema = generate_schema(FULL_SHAPE, seed=3)
        lifted = roundtrip(
            schema,
            MappingOptions(null_policy=NullPolicy.NOT_IN_KEYS,
                           sublink_policy=SublinkPolicy.INDICATOR),
        )
        assert isinstance(lifted.report.dropped, tuple)
        for note in lifted.report.dropped:
            assert note.detail

    def test_report_as_dict_is_json_serializable(self):
        lifted = roundtrip(cris_schema())
        payload = json.loads(json.dumps(lifted.report.as_dict()))
        assert payload["schema"] == "CRIS"
        assert payload["entries"]


class TestFixpoint:
    def test_cris_all_dialects(self):
        for dialect in ("sql2", "oracle", "ingres", "sybase", "db2"):
            report = check_fixpoint(cris_schema(), dialect=dialect)
            assert report.ok, report.describe()

    def test_cris_all_option_sets(self):
        for options in OPTION_SETS:
            report = check_fixpoint(cris_schema(), options)
            assert report.ok, report.describe()

    def test_empirical_leg_runs(self):
        report = check_fixpoint(
            cris_schema(), empirical_scale=500, seed=11
        )
        assert report.ok, report.describe()
        assert any(leg.name == "empirical" for leg in report.legs)

    def test_report_shape(self):
        report = check_fixpoint(cris_schema())
        names = [leg.name for leg in report.legs]
        assert names == ["ddl-idempotent", "structure", "implication"]
        payload = report.as_dict()
        assert payload["ok"] is True
        assert len(payload["legs"]) == 3

    def test_divergence_is_detected(self):
        # A lift that forgets a constraint cannot be a fixpoint: the
        # harness must notice, not vacuously pass.  Simulate by
        # remapping under the wrong options.
        schema = generate_schema(FULL_SHAPE, seed=13)
        first = map_schema(schema, MappingOptions())
        lifted = lift_ddl(first.sql("sql2"))
        wrong = MappingOptions(null_policy=NullPolicy.NOT_ALLOWED)
        second = map_schema(lifted.schema, wrong)
        assert second.sql("sql2") != first.sql("sql2")


class TestCli:
    def run(self, *argv):
        out = io.StringIO()
        code = main(list(argv), out=out)
        return code, out.getvalue()

    def test_reverse_lifts_ddl(self, tmp_path):
        ddl = map_schema(cris_schema(), MappingOptions()).sql("oracle")
        path = tmp_path / "cris.sql"
        path.write_text(ddl)
        code, output = self.run(
            "reverse", str(path), "--dialect", "oracle"
        )
        assert code == 0
        assert "schema CRIS" in output
        assert "lift of 'CRIS'" in output

    def test_reverse_json(self, tmp_path):
        ddl = map_schema(cris_schema(), MappingOptions()).sql("sql2")
        path = tmp_path / "cris.sql"
        path.write_text(ddl)
        code, output = self.run("reverse", str(path), "--format", "json")
        assert code == 0
        payload = json.loads(output)
        assert payload["schema"] == "CRIS"
        assert parse(payload["dsl"])

    def test_reverse_fixpoint(self, tmp_path):
        path = tmp_path / "cris.ridl"
        path.write_text(to_dsl(cris_schema()))
        code, output = self.run("reverse", str(path), "--fixpoint")
        assert code == 0
        assert "PASS" in output

    def test_reverse_unparseable_ddl_exits_2(self, tmp_path):
        path = tmp_path / "legacy.sql"
        path.write_text("CREATE TABLE t (x int);\n")
        code, output = self.run("reverse", str(path))
        assert code == 2
        assert "error:" in output


class TestRoundTripFuzzer:
    """The standing CI leg: random schemas, random options, random
    dialect — the fixpoint must hold for every one.

    ``REVERSE_FUZZ_EXAMPLES`` scales the run (tier-1 default 25; the
    CI job sets 200+).  The hypothesis seed is pinned so a CI failure
    reproduces locally from the logged example.
    """

    @hypothesis_seed(20260808)
    @settings(
        max_examples=int(os.environ.get("REVERSE_FUZZ_EXAMPLES", "25")),
        deadline=None,
        derandomize=True,
        suppress_health_check=[
            HealthCheck.too_slow,
            HealthCheck.data_too_large,
            HealthCheck.filter_too_much,
            HealthCheck.large_base_example,
        ],
    )
    @given(
        schema=shaped_schemas(),
        options=mapping_options(),
        dialect=dialects(),
    )
    def test_fixpoint_holds(self, schema, options, dialect):
        report = check_fixpoint(schema, options, dialect=dialect)
        assert report.ok, report.describe()

    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(seed=st.integers(min_value=0, max_value=200))
    def test_lift_count_matches_source(self, seed):
        """Structural invariant independent of the byte fixpoint:
        under the policies where every subtype keeps its own relation
        (SEPARATE default, INDICATOR), the lift reconstructs exactly
        as many sublinks as the source schema had."""
        schema = generate_schema(FULL_SHAPE, seed=seed)
        for options in (
            MappingOptions(),
            MappingOptions(sublink_policy=SublinkPolicy.INDICATOR),
        ):
            lifted = roundtrip(schema, options)
            assert len(lifted.schema.sublinks) == len(schema.sublinks)
