"""Tests for the binary-to-binary basic transformations."""

import pytest

from repro.brm import Population, RoleId, SchemaBuilder, char, numeric
from repro.errors import MappingError
from repro.mapper import MappingOptions, MappingState, SublinkPolicy
from repro.mapper.transformations import (
    add_indicator_fact,
    apply_sublink_policies,
    canonicalize_constraints,
    eliminate_sublink,
    restrict_scope,
)


def make_state(schema, options=None):
    return MappingState(
        schema=schema.copy(), options=options or MappingOptions(), original=schema
    )


def subtype_schema(*, total_roles=2):
    b = SchemaBuilder("s")
    b.nolot("Paper").nolot("PP")
    b.lot("Paper_Id", char(6)).lot("PP_Id", char(2))
    b.lot_nolot("Session", numeric(3)).lot_nolot("Person", char(30))
    b.identifier("Paper", "Paper_Id")
    b.subtype("PP", "Paper")
    b.identifier("PP", "PP_Id")  # total role 1
    if total_roles >= 2:
        b.attribute("PP", "Session", fact="scheduled", total=True)
    b.attribute("PP", "Person", fact="presents")  # optional
    return b.build()


class TestRestrictScope:
    def test_no_scope_is_identity(self):
        schema = subtype_schema()
        state = make_state(schema)
        restrict_scope(state)
        assert state.schema == schema
        assert state.steps == []

    def test_scope_drops_out_of_scope_elements(self):
        schema = subtype_schema()
        state = make_state(
            schema,
            MappingOptions(scope=("Paper", "Paper_Id")),
        )
        restrict_scope(state)
        assert state.schema.has_object_type("Paper")
        assert not state.schema.has_object_type("PP")
        assert not state.schema.has_sublink("PP_IS_Paper")
        assert state.schema.has_fact_type("Paper_has_Paper_Id")
        assert not state.schema.has_fact_type("scheduled")

    def test_scope_population_maps(self):
        schema = subtype_schema()
        state = make_state(schema, MappingOptions(scope=("Paper", "Paper_Id")))
        restrict_scope(state)
        population = Population(schema)
        population.add_fact("Paper_has_Paper_Id", "p1", "P1")
        population.add_instance("PP", "p1")
        projected = state.to_canonical(population)
        assert projected.instances("Paper") == {"p1"}
        restored = state.from_canonical(projected)
        assert restored.instances("Paper") == {"p1"}

    def test_unknown_scope_type_rejected(self):
        state = make_state(subtype_schema(), MappingOptions(scope=("Nope",)))
        with pytest.raises(MappingError):
            restrict_scope(state)


class TestCanonicalize:
    def test_duplicates_removed(self):
        b = SchemaBuilder("s")
        b.nolot("A").lot("K", char(3))
        b.fact("f", ("A", "x"), ("K", "y"))
        b.unique("f.x").unique("f.x")
        state = make_state(b.build())
        canonicalize_constraints(state)
        assert len(state.schema.uniqueness_constraints()) == 1
        assert any(s.transformation == "canonicalize-constraints"
                   for s in state.steps)

    def test_clean_schema_untouched(self):
        schema = subtype_schema()
        state = make_state(schema)
        canonicalize_constraints(state)
        assert state.schema == schema


class TestEliminateSublink:
    def test_roles_re_played_by_supertype(self):
        state = make_state(subtype_schema())
        eliminate_sublink(state, "PP_IS_Paper")
        schema = state.schema
        assert not schema.has_object_type("PP")
        assert not schema.has_sublink("PP_IS_Paper")
        assert schema.fact_type("scheduled").first.player == "Paper"
        assert schema.fact_type("presents").first.player == "Paper"

    def test_anchor_prefers_reference_fact(self):
        state = make_state(subtype_schema())
        eliminate_sublink(state, "PP_IS_Paper")
        record = state.hints.eliminations["PP_IS_Paper"]
        assert record.anchor == RoleId("PP_has_PP_Id", "with")
        assert record.indicator_fact is None

    def test_lossless_equality_among_total_roles(self):
        state = make_state(subtype_schema())
        eliminate_sublink(state, "PP_IS_Paper")
        equalities = state.schema.equalities()
        assert len(equalities) == 1
        assert set(equalities[0].items) == {
            RoleId("PP_has_PP_Id", "with"),
            RoleId("scheduled", "with"),
        }

    def test_lossless_subset_for_optional_roles(self):
        state = make_state(subtype_schema())
        eliminate_sublink(state, "PP_IS_Paper")
        subsets = state.schema.subsets()
        assert len(subsets) == 1
        assert subsets[0].subset == RoleId("presents", "with")
        assert subsets[0].superset == RoleId("PP_has_PP_Id", "with")

    def test_totality_on_subtype_dropped(self):
        state = make_state(subtype_schema())
        eliminate_sublink(state, "PP_IS_Paper")
        for total in state.schema.totals():
            assert total.object_type != "PP"
            # The re-played roles must not be total on Paper either.
            for item in total.items:
                assert item.fact not in ("scheduled", "presents", "PP_has_PP_Id")

    def test_factless_subtype_gets_indicator(self):
        b = SchemaBuilder("s")
        b.nolot("Paper").nolot("Invited").lot("Paper_Id", char(6))
        b.identifier("Paper", "Paper_Id")
        b.subtype("Invited", "Paper")
        state = make_state(b.build())
        eliminate_sublink(state, "Invited_IS_Paper")
        record = state.hints.eliminations["Invited_IS_Paper"]
        assert record.anchor is None
        assert record.indicator_fact is not None
        fact = state.schema.fact_type(record.indicator_fact)
        assert fact.first.player == "Paper"
        assert state.schema.has_object_type("Is_Invited")

    def test_population_round_trip(self):
        schema = subtype_schema()
        state = make_state(schema)
        eliminate_sublink(state, "PP_IS_Paper")
        population = Population(schema)
        population.add_fact("Paper_has_Paper_Id", "p1", "P1")
        population.add_instance("PP", "p1")
        population.add_fact("PP_has_PP_Id", "p1", "A1")
        population.add_fact("scheduled", "p1", 101)
        population.add_fact("Paper_has_Paper_Id", "p2", "P2")
        forward = state.to_canonical(population)
        assert "p1" in forward.instances("Paper")
        assert not forward.schema.has_object_type("PP")
        back = state.from_canonical(forward)
        assert back == population

    def test_indicator_population_round_trip(self):
        b = SchemaBuilder("s")
        b.nolot("Paper").nolot("Invited").lot("Paper_Id", char(6))
        b.identifier("Paper", "Paper_Id")
        b.subtype("Invited", "Paper")
        schema = b.build()
        state = make_state(schema)
        eliminate_sublink(state, "Invited_IS_Paper")
        population = Population(schema)
        population.add_fact("Paper_has_Paper_Id", "p1", "P1")
        population.add_fact("Paper_has_Paper_Id", "p2", "P2")
        population.add_instance("Invited", "p1")
        forward = state.to_canonical(population)
        fact = state.hints.eliminations["Invited_IS_Paper"].indicator_fact
        assert forward.fact_instances(fact) == {("p1", "Y"), ("p2", "N")}
        assert state.from_canonical(forward) == population

    def test_multiple_supertypes_rejected(self):
        b = SchemaBuilder("s")
        b.nolot("A").nolot("B").nolot("X")
        b.lot("AK", char(3)).lot("BK", char(3))
        b.identifier("A", "AK")
        b.identifier("B", "BK")
        b.subtype("X", "A", name="X_IS_A").subtype("X", "B", name="X_IS_B")
        state = make_state(b.build())
        with pytest.raises(MappingError):
            eliminate_sublink(state, "X_IS_A")

    def test_subtype_chain_repoints(self):
        b = SchemaBuilder("s")
        b.nolot("A").nolot("B").nolot("C")
        b.lot("AK", char(3)).lot_nolot("V", char(3))
        b.identifier("A", "AK")
        b.subtype("B", "A").subtype("C", "B")
        b.attribute("B", "V", fact="bf", total=True)
        state = make_state(b.build())
        eliminate_sublink(state, "B_IS_A")
        sublink = state.schema.sublink("C_IS_B")
        assert sublink.subtype == "C"
        assert sublink.supertype == "A"


class TestIndicatorPolicy:
    def test_indicator_keeps_sublink(self):
        schema = subtype_schema()
        state = make_state(schema)
        fact = add_indicator_fact(state, "PP_IS_Paper", keep_sublink=True)
        assert state.schema.has_sublink("PP_IS_Paper")
        assert state.schema.has_fact_type(fact)
        assert state.hints.indicator_sublinks["PP_IS_Paper"] == fact

    def test_indicator_population_maps(self):
        schema = subtype_schema()
        state = make_state(schema)
        fact = add_indicator_fact(state, "PP_IS_Paper", keep_sublink=True)
        population = Population(schema)
        population.add_fact("Paper_has_Paper_Id", "p1", "P1")
        population.add_instance("PP", "p1")
        population.add_fact("PP_has_PP_Id", "p1", "A1")
        population.add_fact("scheduled", "p1", 101)
        forward = state.to_canonical(population)
        assert ("p1", "Y") in forward.fact_instances(fact)
        assert state.from_canonical(forward) == population


class TestApplySublinkPolicies:
    def test_global_policy_with_override(self):
        b = SchemaBuilder("s")
        b.nolot("Paper").nolot("A").nolot("B").lot("Paper_Id", char(6))
        b.lot_nolot("V", char(5))
        b.identifier("Paper", "Paper_Id")
        b.subtype("A", "Paper").subtype("B", "Paper")
        b.attribute("A", "V", fact="af", total=True)
        b.attribute("B", "V", fact="bf", total=True)
        schema = b.build()
        state = make_state(
            schema,
            MappingOptions(
                sublink_policy=SublinkPolicy.TOGETHER,
                sublink_overrides=(("B_IS_Paper", SublinkPolicy.SEPARATE),),
            ),
        )
        apply_sublink_policies(state)
        assert not state.schema.has_sublink("A_IS_Paper")  # eliminated
        assert state.schema.has_sublink("B_IS_Paper")  # kept

    def test_deepest_first_elimination(self):
        b = SchemaBuilder("s")
        b.nolot("A").nolot("B").nolot("C")
        b.lot("AK", char(3)).lot_nolot("V", char(3))
        b.identifier("A", "AK")
        b.subtype("B", "A").subtype("C", "B")
        b.attribute("B", "V", fact="bf", total=True)
        b.attribute("C", "V", fact="cf", total=True)
        state = make_state(
            b.build(), MappingOptions(sublink_policy=SublinkPolicy.TOGETHER)
        )
        apply_sublink_policies(state)
        assert not state.schema.sublinks
        assert state.schema.fact_type("cf").first.player == "A"
