"""Metamorphic tests: conceptual violations surface relationally.

The point of the lossless rules is that the relational schema admits
*exactly* the images of valid conceptual states.  So: take a valid
population, corrupt it in a schema-meaningful way (the corruption
classes mirror the constraint taxonomy), push the corrupted state
through the forward mapping — the generated relational constraints
must reject it.  If a corruption slipped through, STATES(S2) would be
strictly larger than g(STATES(S1)) and the transformation lossy.
"""

import pytest

from repro.brm import Population, SchemaBuilder, char, numeric
from repro.cris import figure6_population, figure6_schema
from repro.mapper import MappingOptions, NullPolicy, SublinkPolicy, map_schema

ALL_OPTIONS = [
    MappingOptions(),
    MappingOptions(null_policy=NullPolicy.NOT_ALLOWED),
    MappingOptions(sublink_policy=SublinkPolicy.INDICATOR),
    MappingOptions(sublink_policy=SublinkPolicy.TOGETHER),
]
IDS = ["alt1", "alt2", "indicator", "together"]


def forward_violations(schema, population, options):
    """Forward-map without assuming validity; return violation names.

    Deliberately skips canonicalization: renaming instances to their
    reference values would *merge* duplicate-identifier corruptions
    away; the forward interpretation works on abstract instances.
    """
    result = map_schema(schema, options)
    canonical = result.state.to_canonical(population)
    database = result.state_map.forward(canonical)
    return {v.constraint_name for v in database.check()}


class TestFigure6Corruptions:
    @pytest.mark.parametrize("options", ALL_OPTIONS, ids=IDS)
    def test_valid_population_maps_cleanly(self, options):
        schema = figure6_schema()
        assert forward_violations(
            schema, figure6_population(schema), options
        ) == set()

    @pytest.mark.parametrize("options", ALL_OPTIONS, ids=IDS)
    def test_duplicate_identifier_caught(self, options):
        # Two papers sharing one Paper_Id: uniqueness of the naming
        # convention must surface as a key violation.
        schema = figure6_schema()
        population = figure6_population(schema)
        population.add_fact("Paper_has_Paper_Id", "p9", "P1")
        population.add_fact("Paper_has_Title", "p9", "Impostor")
        violations = forward_violations(schema, population, options)
        assert any(name.startswith("C_KEY$") or "NOT NULL" in name
                   for name in violations), violations

    @pytest.mark.parametrize("options", ALL_OPTIONS, ids=IDS)
    def test_missing_mandatory_fact_caught(self, options):
        # A paper without a title: totality must surface as NOT NULL
        # (or a missing satellite row under NULL NOT ALLOWED).
        schema = figure6_schema()
        population = figure6_population(schema)
        population.add_fact("Paper_has_Paper_Id", "p9", "P9")
        violations = forward_violations(schema, population, options)
        assert violations, "titleless paper must be rejected"

    @pytest.mark.parametrize(
        "options",
        [MappingOptions(), MappingOptions(sublink_policy=SublinkPolicy.INDICATOR)],
        ids=["alt1", "indicator"],
    )
    def test_program_paper_without_session_caught(self, options):
        schema = figure6_schema()
        population = figure6_population(schema)
        population.add_instance("Program_Paper", "p3")
        population.add_fact(
            "Program_Paper_has_Paper_ProgramId", "p3", "A3"
        )  # but never scheduled
        violations = forward_violations(schema, population, options)
        assert any("NOT NULL" in name for name in violations), violations

    def test_program_paper_without_session_caught_together(self):
        # Under TOGETHER the same corruption trips the C_EE$ rule.
        schema = figure6_schema()
        population = figure6_population(schema)
        population.add_instance("Program_Paper", "p3")
        population.add_fact("Program_Paper_has_Paper_ProgramId", "p3", "A3")
        violations = forward_violations(
            schema,
            population,
            MappingOptions(sublink_policy=SublinkPolicy.TOGETHER),
        )
        assert any(name.startswith("C_EE$") for name in violations)

    def test_presenter_outside_subtype_caught_together(self):
        # A presenter on a paper that is not a Program_Paper violates
        # the dependent-existence rule under TOGETHER.
        schema = figure6_schema()
        population = figure6_population(schema)
        # Bypass the schema (presents is played by Program_Paper) by
        # corrupting at the canonical level: map first, then insert.
        result = map_schema(
            schema, MappingOptions(sublink_policy=SublinkPolicy.TOGETHER)
        )
        database = result.forward(population)
        database.insert(
            "Paper",
            {
                "Paper_Id": "P9",
                "Title_of": "x",
                "Is_Invited_Paper": "N",
                "Person_presenting": "Eve",
            },
        )
        names = {v.constraint_name for v in database.check()}
        assert any(name.startswith("C_DE$") for name in names)

    def test_dangling_sublink_attribute_caught(self):
        # Non-NULL Paper_ProgramId_Is without a Program_Paper row: the
        # C_EQ$ equality view must fire (default option set).
        schema = figure6_schema()
        result = map_schema(schema)
        database = result.forward(figure6_population(schema))
        database.insert(
            "Paper",
            {"Paper_Id": "P9", "Title_of": "x", "Paper_ProgramId_Is": "A9"},
        )
        names = {v.constraint_name for v in database.check()}
        assert any(name.startswith("C_EQ$") for name in names)

    def test_orphan_sub_row_caught(self):
        # A Program_Paper row referencing no Paper: foreign key fires.
        schema = figure6_schema()
        result = map_schema(schema)
        database = result.forward(figure6_population(schema))
        database.insert(
            "Program_Paper",
            {"Paper_ProgramId": "A9", "Session_comprising": 9},
        )
        names = {v.constraint_name for v in database.check()}
        assert any(name.startswith(("C_FKEY$", "C_EQ$")) for name in names)


class TestSetAlgebraicCorruptions:
    def schema(self):
        b = SchemaBuilder("s")
        b.nolot("Paper").lot("Paper_Id", char(6))
        b.identifier("Paper", "Paper_Id")
        b.lot_nolot("Person", char(30)).lot_nolot("Session", numeric(3))
        b.attribute("Paper", "Person", fact="by")
        b.attribute("Paper", "Session", fact="during")
        return b

    def test_subset_violation_surfaces_as_check(self):
        b = self.schema()
        b.subset(("by", "with"), ("during", "with"))
        schema = b.build()
        population = Population(schema)
        population.add_fact("Paper_has_Paper_Id", "p1", "P1")
        population.add_fact("by", "p1", "Ann")  # by without during
        violations = forward_violations(schema, population, MappingOptions())
        assert any(name.startswith("C_DE$") for name in violations)

    def test_equality_violation_surfaces_as_check(self):
        b = self.schema()
        b.equality(("by", "with"), ("during", "with"))
        schema = b.build()
        population = Population(schema)
        population.add_fact("Paper_has_Paper_Id", "p1", "P1")
        population.add_fact("during", "p1", 3)
        violations = forward_violations(schema, population, MappingOptions())
        assert any(name.startswith("C_EE$") for name in violations)

    def test_exclusion_violation_surfaces_as_check(self):
        b = self.schema()
        b.exclusion(("by", "with"), ("during", "with"))
        schema = b.build()
        population = Population(schema)
        population.add_fact("Paper_has_Paper_Id", "p1", "P1")
        population.add_fact("by", "p1", "Ann")
        population.add_fact("during", "p1", 3)
        violations = forward_violations(schema, population, MappingOptions())
        assert any(name.startswith("C_CHK$") for name in violations)

    def test_total_union_violation_surfaces_as_check(self):
        b = self.schema()
        b.total_union("Paper", ("by", "with"), ("during", "with"))
        schema = b.build()
        population = Population(schema)
        population.add_fact("Paper_has_Paper_Id", "p1", "P1")
        # p1 plays neither role.
        violations = forward_violations(schema, population, MappingOptions())
        assert any(name.startswith("C_CHK$") for name in violations)

    def test_value_violation_surfaces_as_check(self):
        b = SchemaBuilder("s")
        b.nolot("Paper").lot("Paper_Id", char(6)).lot("Status", char(1))
        b.identifier("Paper", "Paper_Id")
        b.attribute("Paper", "Status", fact="status_of", total=True)
        b.values("Status", ("A", "R"))
        schema = b.build()
        population = Population(schema)
        population.add_fact("Paper_has_Paper_Id", "p1", "P1")
        population.add_fact("status_of", "p1", "Z")  # illegal value
        violations = forward_violations(schema, population, MappingOptions())
        assert any(name.startswith("C_VAL$") for name in violations)

    def test_cross_relation_subset_surfaces_as_view(self):
        b = self.schema()
        b.subset(("by", "with"), ("during", "with"))
        schema = b.build()
        population = Population(schema)
        population.add_fact("Paper_has_Paper_Id", "p1", "P1")
        population.add_fact("by", "p1", "Ann")
        violations = forward_violations(
            schema, population, MappingOptions(null_policy=NullPolicy.NOT_ALLOWED)
        )
        assert any(name.startswith("C_SUB$") for name in violations)
