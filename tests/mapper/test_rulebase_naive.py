"""Tests for the rule-driven engine and the naive baseline."""

import pytest

from repro.brm import SchemaBuilder, char
from repro.cris import cris_schema, figure6_schema
from repro.errors import AnalysisError, MappingError, NotReferableError
from repro.mapper import (
    MappingOptions,
    MappingState,
    Rule,
    TransformationEngine,
    default_rule_base,
    map_schema,
)
from repro.mapper.naive import dropped_constraints, naive_map


class TestRuleEngine:
    def test_default_rules_fire_once_each(self):
        schema = figure6_schema()
        state = MappingState(
            schema=schema.copy(), options=MappingOptions(), original=schema
        )
        engine = TransformationEngine()
        engine.run(state)
        fired = {f for f in state.flags if f.startswith("fired:")}
        assert fired == {
            "fired:restrict-scope",
            "fired:canonicalize",
            "fired:sublink-options",
        }

    def test_custom_rule_appended(self):
        schema = figure6_schema()
        state = MappingState(
            schema=schema.copy(), options=MappingOptions(), original=schema
        )
        seen = []

        def action(s):
            seen.append(s.schema.name)

        engine = TransformationEngine()
        engine.add_rule(
            Rule(
                "expert",
                lambda s: "fired:expert" not in s.flags,
                action,
            )
        )
        engine.run(state)
        assert seen == ["figure6"]

    def test_rule_insertion_before_named_rule(self):
        engine = TransformationEngine()
        engine.add_rule(
            Rule("early", lambda s: False, lambda s: None),
            before="canonicalize",
        )
        names = [r.name for r in engine.rules]
        assert names.index("early") < names.index("canonicalize")

    def test_insert_before_unknown_rule_rejected(self):
        engine = TransformationEngine()
        with pytest.raises(MappingError):
            engine.add_rule(
                Rule("x", lambda s: False, lambda s: None), before="nope"
            )

    def test_non_quiescing_rule_detected(self):
        schema = figure6_schema()
        state = MappingState(
            schema=schema.copy(), options=MappingOptions(), original=schema
        )
        engine = TransformationEngine(
            [Rule("loop", lambda s: True, lambda s: None)]
        )
        with pytest.raises(MappingError):
            engine.run(state, max_firings=10)

    def test_extra_rules_via_map_schema(self):
        observed = []
        rule = Rule(
            "observer",
            lambda s: "fired:observer" not in s.flags,
            lambda s: observed.append(len(s.schema.fact_types)),
        )
        map_schema(figure6_schema(), extra_rules=(rule,))
        assert observed


class TestAnalyzerGate:
    def test_unmappable_schema_refused(self):
        b = SchemaBuilder("bad")
        b.nolot("Ghost").lot("K", char(3))
        b.attribute("Ghost", "K")
        with pytest.raises(AnalysisError):
            map_schema(b.build())

    def test_gate_can_be_skipped(self):
        b = SchemaBuilder("bad")
        b.nolot("Ghost").lot("K", char(3))
        b.attribute("Ghost", "K")
        # Without the gate, the synthesis itself reports the problem.
        with pytest.raises(NotReferableError):
            map_schema(b.build(), analyze_first=False)


class TestNaiveBaseline:
    def test_one_relation_per_nolot_plus_m2m(self):
        schema = cris_schema()
        rschema = naive_map(schema)
        names = {r.name for r in rschema.relations}
        assert names == {
            "Person",
            "Referee",
            "Paper",
            "Program_Paper",
            "Session",
            "assigned_to_rel",
            "committee_member_rel",
        }

    def test_subtype_gets_supertype_reference(self):
        rschema = naive_map(figure6_schema())
        invited = rschema.relation("Invited_Paper")
        assert any("IS_Paper" in n for n in invited.attribute_names)
        fks = rschema.foreign_keys("Invited_Paper")
        assert any(fk.referenced_relation == "Paper" for fk in fks)

    def test_always_normalized_no_lossless_rules(self):
        rschema = naive_map(figure6_schema())
        assert rschema.view_constraints() == []
        assert rschema.checks() == []

    def test_dropped_constraints_reported(self):
        b = SchemaBuilder("s")
        b.nolot("Paper").nolot("A").nolot("B").lot("K", char(3))
        b.identifier("Paper", "K")
        b.subtype("A", "Paper").subtype("B", "Paper")
        b.exclusion("sublink:A_IS_Paper", "sublink:B_IS_Paper")
        lost = dropped_constraints(b.build())
        assert len(lost) == 1  # the exclusion

    def test_ridlm_conserves_what_naive_drops(self):
        from repro.mapper import SublinkPolicy

        b = SchemaBuilder("s")
        b.nolot("Paper").nolot("A").nolot("B").lot("K", char(3))
        b.identifier("Paper", "K")
        b.subtype("A", "Paper").subtype("B", "Paper")
        b.exclusion("sublink:A_IS_Paper", "sublink:B_IS_Paper")
        schema = b.build()
        result = map_schema(
            schema, MappingOptions(sublink_policy=SublinkPolicy.INDICATOR)
        )
        # RIDL-M keeps the exclusion as a CHECK on the indicators; the
        # naive algorithm loses it entirely.
        assert any(
            c.comment == "Exclusion" for c in result.relational.checks()
        )
        assert dropped_constraints(schema)

    def test_naive_requires_referability(self):
        b = SchemaBuilder("s")
        b.nolot("Ghost")
        b.lot("K", char(3))
        b.attribute("Ghost", "K")
        with pytest.raises(NotReferableError):
            naive_map(b.build())
