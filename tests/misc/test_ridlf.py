"""Tests for RIDL-F schema induction from example data."""

import pytest

from repro.analyzer import analyze
from repro.brm import DataTypeKind
from repro.mapper import map_schema
from repro.ridlf import (
    ExampleTable,
    InductionError,
    induce_schema,
    infer_datatype,
)

PAPERS = ExampleTable(
    "Paper",
    (
        {"Paper_Id": "P1", "Title": "On Databases", "Status": "A", "Pages": 12},
        {"Paper_Id": "P2", "Title": "NIAM Revisited", "Status": "R", "Pages": 8},
        {"Paper_Id": "P3", "Title": "A Late One", "Status": "A", "Pages": None},
    ),
)


class TestExampleTable:
    def test_requires_rows(self):
        with pytest.raises(InductionError):
            ExampleTable("Empty", ())

    def test_columns_in_first_appearance_order(self):
        table = ExampleTable(
            "T", ({"a": 1}, {"b": 2, "a": 3}, {"c": 4})
        )
        assert table.columns == ["a", "b", "c"]

    def test_values_skip_nulls(self):
        assert PAPERS.values("Pages") == [12, 8]


class TestDatatypeInference:
    def test_integers(self):
        datatype = infer_datatype([12, 8, 123])
        assert datatype.kind is DataTypeKind.NUMERIC
        assert datatype.length >= 3

    def test_floats(self):
        datatype = infer_datatype([1.5, 2])
        assert datatype.kind is DataTypeKind.NUMERIC
        assert datatype.scale == 2

    def test_strings_sized_with_headroom(self):
        datatype = infer_datatype(["abcd", "ab"])
        assert datatype.kind is DataTypeKind.CHAR
        assert datatype.length >= 4

    def test_booleans(self):
        assert infer_datatype([True, False]).length == 1


class TestKeyDetection:
    def test_declared_key_used(self):
        table = ExampleTable(
            "T", ({"k": "a", "v": 1}, {"k": "b", "v": 1}), key="k"
        )
        result = induce_schema([table])
        assert result.schema.has_fact_type("T_has_k")

    def test_declared_key_must_exist(self):
        table = ExampleTable("T", ({"a": 1},), key="nope")
        with pytest.raises(InductionError):
            induce_schema([table])

    def test_detected_key_is_unique_never_null(self):
        result = induce_schema([PAPERS])
        assert result.schema.has_fact_type("Paper_has_Paper_Id")
        chosen = [e for e in result.evidence
                  if e.verdict == "chosen as naming convention"]
        assert chosen[0].subject == "Paper.Paper_Id"

    def test_no_key_candidate_fails(self):
        table = ExampleTable(
            "T", ({"v": 1}, {"v": 1})  # duplicated, no other column
        )
        with pytest.raises(InductionError):
            induce_schema([table])


class TestConstraintInduction:
    @pytest.fixture(scope="class")
    def result(self):
        return induce_schema([PAPERS], name="Elicited")

    def test_totality_from_full_columns(self, result):
        from repro.brm import RoleId

        schema = result.schema
        assert schema.is_total(RoleId("Paper_Title_fact", "with"))
        assert not schema.is_total(RoleId("Paper_Pages_fact", "with"))

    def test_alternate_identifier_flagged(self, result):
        from repro.brm import RoleId

        assert result.schema.is_unique(RoleId("Paper_Title_fact", "of"))
        assert any(
            "candidate alternate identifier" in e.verdict
            for e in result.evidence
        )

    def test_enum_detected(self, result):
        constraint = result.schema.value_constraint_on("Status")
        assert constraint is not None
        assert set(constraint.values) == {"A", "R"}

    def test_no_enum_for_unique_values(self, result):
        assert result.schema.value_constraint_on("Title") is None

    def test_all_null_column_skipped(self):
        table = ExampleTable(
            "T", ({"k": "a", "ghost": None}, {"k": "b", "ghost": None})
        )
        result = induce_schema([table])
        assert not result.schema.has_object_type("ghost")
        assert any(e.verdict == "skipped" for e in result.evidence)

    def test_render_lists_evidence(self, result):
        rendered = result.render()
        assert "RIDL-F proposal" in rendered
        assert "Paper.Status" in rendered


class TestEndToEnd:
    def test_induced_schema_is_analyzable_and_mappable(self):
        sessions = ExampleTable(
            "Session",
            (
                {"Nr": 101, "Room": "Aula", "Track": "research"},
                {"Nr": 102, "Room": "R2", "Track": "industry"},
                {"Nr": 103, "Room": "Aula", "Track": "research"},
            ),
        )
        result = induce_schema([PAPERS, sessions], name="conf")
        report = analyze(result.schema)
        assert report.is_mappable
        mapped = map_schema(result.schema)
        names = {r.name for r in mapped.relational.relations}
        assert names == {"Paper", "Session"}

    def test_colliding_column_names_across_tables(self):
        first = ExampleTable("A", ({"Id": 1, "Name": "x"},))
        second = ExampleTable("B", ({"Id": 9, "Name": "y"},))
        result = induce_schema([first, second])
        # LOT names are disambiguated per entity.
        assert result.schema.has_object_type("Id")
        assert result.schema.has_object_type("B_Id")
        assert result.schema.has_object_type("B_Name")
