"""Tests for the meta-database and the notation renderers."""

import pytest

from repro.brm import SchemaBuilder, char
from repro.cris import cris_schema, figure6_schema
from repro.errors import MetaDatabaseError
from repro.metadb import (
    MetaDatabase,
    constraints_view,
    export_metadb,
    object_types_view,
    roles_view,
    sublinks_view,
)
from repro.notation import render_ascii, render_dot


class TestMetaDatabase:
    def test_check_in_out_round_trip(self):
        store = MetaDatabase()
        schema = figure6_schema()
        version = store.check_in(schema, comment="initial")
        assert version.version == 1
        assert store.check_out("figure6") == schema

    def test_versioning(self):
        store = MetaDatabase()
        schema = figure6_schema()
        store.check_in(schema)
        evolved = schema.copy()
        evolved.add_object_type(
            __import__("repro.brm", fromlist=["nolot"]).nolot("Review")
        )
        store.check_in(evolved, comment="added Review")
        assert [v.version for v in store.history("figure6")] == [1, 2]
        assert store.check_out("figure6", 1) == schema
        assert store.check_out("figure6") == evolved

    def test_multiple_independent_schemas(self):
        store = MetaDatabase()
        store.check_in(figure6_schema())
        store.check_in(cris_schema())
        assert store.schema_names() == ["CRIS", "figure6"]

    def test_unknown_schema_and_version(self):
        store = MetaDatabase()
        with pytest.raises(MetaDatabaseError):
            store.check_out("nope")
        store.check_in(figure6_schema())
        with pytest.raises(MetaDatabaseError):
            store.check_out("figure6", 7)

    def test_drop(self):
        store = MetaDatabase()
        store.check_in(figure6_schema())
        store.drop("figure6")
        assert store.schema_names() == []
        with pytest.raises(MetaDatabaseError):
            store.drop("figure6")

    def test_diff_between_versions(self):
        store = MetaDatabase()
        schema = figure6_schema()
        store.check_in(schema)
        evolved = schema.copy()
        evolved.remove_constraint("T2")
        store.check_in(evolved)
        diff = store.diff("figure6", 1, 2)
        assert "-constraint T2" in diff


class TestDataDictionaryViews:
    def test_object_types_view(self):
        rows = object_types_view(figure6_schema())
        by_name = {row["object_type"]: row for row in rows}
        assert by_name["Paper"]["kind"] == "NOLOT"
        assert by_name["Person"]["kind"] == "LOT-NOLOT"
        assert by_name["Paper_Id"]["datatype"] == "CHAR(6)"
        assert "Program_Paper" in by_name["Paper"]["subtypes"]

    def test_roles_view(self):
        rows = roles_view(figure6_schema())
        scheduled = [
            r
            for r in rows
            if r["fact_type"] == "scheduled" and r["role"] == "presented_during"
        ][0]
        assert scheduled["unique"] is True
        assert scheduled["total"] is True
        assert scheduled["co_player"] == "Session"

    def test_constraints_view(self):
        rows = constraints_view(figure6_schema())
        kinds = {row["kind"] for row in rows}
        assert "uniqueness" in kinds
        assert "totalunion" in kinds

    def test_sublinks_view(self):
        rows = sublinks_view(figure6_schema())
        assert {
            (row["subtype"], row["supertype"]) for row in rows
        } == {("Invited_Paper", "Paper"), ("Program_Paper", "Paper")}


class TestSelfExport:
    def test_export_is_valid_database(self):
        store = MetaDatabase()
        store.check_in(figure6_schema())
        store.check_in(cris_schema())
        database = export_metadb(store)
        assert database.is_valid(), [str(v) for v in database.check()][:3]
        assert database.count("META_SCHEMA") == 2
        assert database.count("META_OBJECT_TYPE") > 10

    def test_export_is_queryable(self):
        from repro.relational import Compare

        store = MetaDatabase()
        store.check_in(figure6_schema())
        database = export_metadb(store)
        unique_roles = database.select(
            "META_ROLE", Compare("is_unique", "=", "Y")
        )
        assert unique_roles
        assert all(row["is_unique"] == "Y" for row in unique_roles)


class TestNotation:
    def test_dot_renders_all_elements(self):
        dot = render_dot(figure6_schema())
        assert dot.startswith('digraph "figure6"')
        assert '"Paper"' in dot
        assert '"fact:scheduled"' in dot
        assert "style=bold" in dot  # sublink edges
        assert dot.count("shape=record") == len(figure6_schema().fact_types)

    def test_dot_marks_constraints(self):
        b = SchemaBuilder("s")
        b.nolot("A").nolot("B").nolot("C")
        b.subtype("B", "A").subtype("C", "A")
        b.exclusion("sublink:B_IS_A", "sublink:C_IS_A")
        dot = render_dot(b.build())
        assert 'label="X"' in dot  # the exclusion glyph

    def test_ascii_shows_uniqueness_and_totality(self):
        text = render_ascii(figure6_schema())
        assert "BINARY SCHEMA figure6" in text
        assert "-u-" in text  # identifier bar
        assert " V" in text  # total role sign
        assert "is a subtype of Paper" in text

    def test_ascii_lists_set_algebraic_constraints(self):
        b = SchemaBuilder("s")
        b.nolot("A").nolot("B").nolot("C")
        b.subtype("B", "A").subtype("C", "A")
        b.exclusion("sublink:B_IS_A", "sublink:C_IS_A")
        text = render_ascii(b.build())
        assert "SET-ALGEBRAIC CONSTRAINTS" in text
        assert "exclusion over" in text
