"""Every shipped example must run to completion.

Examples are documentation that executes; this test keeps them from
rotting as the library evolves.
"""

import io
import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).resolve().parents[2] / "examples").glob("*.py")
)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(path, monkeypatch):
    captured = io.StringIO()
    monkeypatch.setattr(sys, "stdout", captured)
    runpy.run_path(str(path), run_name="__main__")
    output = captured.getvalue()
    assert output.strip(), f"{path.name} printed nothing"
    assert "Traceback" not in output
