"""Small coverage gaps: report truncation, version metadata, engine
odds and ends, plan accessors."""

import pytest

from repro.brm import SchemaBuilder, char
from repro.cris import figure6_schema
from repro.errors import AnalysisError
from repro.mapper import map_schema
from repro.metadb import MetaDatabase


class TestAnalyzerReportTruncation:
    def test_many_errors_truncated_in_message(self):
        from repro.analyzer import require_mappable

        b = SchemaBuilder("many")
        for index in range(8):
            b.lot(f"A{index}", char(3))
            b.lot(f"B{index}", char(3))
            b.fact(f"ll{index}", (f"A{index}", "x"), (f"B{index}", "y"))
        with pytest.raises(AnalysisError) as excinfo:
            require_mappable(b.build())
        assert "more)" in str(excinfo.value)


class TestMetaDatabaseMetadata:
    def test_version_comment_kept(self):
        store = MetaDatabase()
        version = store.check_in(figure6_schema(), comment="first cut")
        assert store.version("figure6").comment == "first cut"
        assert version.source.startswith("schema figure6")

    def test_version_schema_materialization_is_fresh(self):
        store = MetaDatabase()
        store.check_in(figure6_schema())
        first = store.check_out("figure6")
        second = store.check_out("figure6")
        assert first == second
        assert first is not second


class TestPlanAccessors:
    def test_plan_column_lookup(self):
        result = map_schema(figure6_schema())
        plan = result.plan.plan_for("Program_Paper")
        unit = plan.column("Session_comprising")
        assert unit.domain_name == "D_Session"
        with pytest.raises(KeyError):
            plan.column("nope")

    def test_columns_for_fact(self):
        result = map_schema(figure6_schema())
        plan = result.plan.plan_for("Program_Paper")
        units = plan.columns_for_fact("presents")
        assert [u.name for u in units] == ["Person_presenting"]


class TestEngineOdds:
    def test_insert_many_and_count(self):
        from repro.engine import Database
        from repro.relational import (
            Attribute,
            Domain,
            Relation,
            RelationalSchema,
        )
        from repro.brm import numeric

        schema = RelationalSchema("s")
        schema.add_domain(Domain("D", numeric(4)))
        schema.add_relation(Relation("R", (Attribute("n", "D"),)))
        database = Database(schema)
        database.insert_many("R", [{"n": i} for i in range(5)])
        assert database.count("R") == 5

    def test_validate_truncates_many_violations(self):
        from repro.engine import Database
        from repro.errors import IntegrityViolation
        from repro.relational import (
            Attribute,
            Domain,
            Relation,
            RelationalSchema,
        )
        from repro.brm import numeric

        schema = RelationalSchema("s")
        schema.add_domain(Domain("D", numeric(4)))
        schema.add_relation(Relation("R", (Attribute("n", "D"),)))
        database = Database(schema)
        database.insert_many("R", [{} for _ in range(9)])  # NULL not-null
        with pytest.raises(IntegrityViolation) as excinfo:
            database.validate()
        assert "+4 more" in str(excinfo.value)


class TestDialectHeader:
    def test_profile_header_is_emitted(self):
        from repro.sql import DdlEmitter, DialectProfile

        profile = DialectProfile(name="Custom", header="-- custom banner")
        result = map_schema(figure6_schema())
        ddl = DdlEmitter(profile).emit(result.relational)
        assert "-- custom banner" in ddl
