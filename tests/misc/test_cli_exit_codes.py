"""Distinct CLI exit codes per failure class, and the session modes.

0 success, 1 analysis found the schema unmappable, 2 parse/usage
errors, 3 analysis failures, 4 mapping failures, 5 degraded
best-effort success.
"""

import io

import pytest

from repro.cli import (
    EXIT_ANALYSIS,
    EXIT_DEGRADED,
    EXIT_MAPPING,
    EXIT_OK,
    EXIT_UNMAPPABLE,
    EXIT_USAGE,
    main,
)
from repro.cris import figure6_schema
from repro.dsl import to_dsl
from repro.robustness import Fault, inject


def run(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


@pytest.fixture
def schema_file(tmp_path):
    path = tmp_path / "figure6.ridl"
    path.write_text(to_dsl(figure6_schema()))
    return path


@pytest.fixture
def broken_schema_file(tmp_path):
    path = tmp_path / "bad.ridl"
    path.write_text(
        "schema Bad\nnolot Ghost\nlot K : char(3)\n"
        "attribute Ghost has K\n"
    )
    return path


class TestExitCodes:
    def test_parse_error_exits_2(self, tmp_path):
        path = tmp_path / "syntax.ridl"
        path.write_text("widget Nope\n")
        for command in (["analyze"], ["map"], ["report", "--out", "x"]):
            argv = [command[0], str(path)] + command[1:]
            code, output = run(argv)
            assert code == EXIT_USAGE, argv
            assert "error:" in output

    def test_missing_file_exits_2(self):
        code, _ = run(["map", "no_such_file.ridl"])
        assert code == EXIT_USAGE

    def test_analysis_failure_exits_3(self, broken_schema_file):
        code, output = run(["map", str(broken_schema_file)])
        assert code == EXIT_ANALYSIS
        assert "NOT_REFERABLE" in output

    def test_mapping_failure_exits_4(self, schema_file):
        code, output = run(["map", str(schema_file), "--omit", "Nope"])
        assert code == EXIT_MAPPING
        assert "error:" in output

    def test_analyze_unmappable_exits_1(self, broken_schema_file):
        code, _ = run(["analyze", str(broken_schema_file)])
        assert code == EXIT_UNMAPPABLE

    def test_report_mapping_failure_exits_4(self, schema_file, tmp_path):
        code, _ = run(
            [
                "report",
                str(schema_file),
                "--omit",
                "Nope",
                "--out",
                str(tmp_path / "build"),
            ]
        )
        assert code == EXIT_MAPPING


class TestSessionModes:
    def test_strict_is_the_default_and_accepted(self, schema_file):
        code, output = run(["map", str(schema_file), "--strict"])
        assert code == EXIT_OK
        assert "CREATE TABLE" in output

    def test_best_effort_clean_run_exits_0(self, schema_file):
        code, output = run(["map", str(schema_file), "--best-effort"])
        assert code == EXIT_OK
        assert "CREATE TABLE" in output
        assert "DEGRADED" not in output

    def test_best_effort_degraded_exits_5_and_reports(self, schema_file):
        with inject(Fault("rule:canonicalize", kind="corrupt")):
            code, output = run(
                ["map", str(schema_file), "--best-effort"]
            )
        assert code == EXIT_DEGRADED
        assert "CREATE TABLE" in output  # DDL still produced
        assert "DEGRADED" in output
        assert "canonicalize" in output

    def test_strict_fails_where_best_effort_degrades(self, schema_file):
        with inject(Fault("rule:canonicalize", kind="corrupt")):
            code, output = run(["map", str(schema_file), "--strict"])
        assert code == EXIT_MAPPING
        assert "quarantined" in output

    def test_modes_are_mutually_exclusive(self, schema_file):
        code, output = run(
            ["map", str(schema_file), "--strict", "--best-effort"]
        )
        assert code == EXIT_USAGE
        assert output.startswith("error:")
        assert len(output.strip().splitlines()) == 1

    def test_report_writes_health_artifact(self, schema_file, tmp_path):
        out_dir = tmp_path / "build"
        code, output = run(
            ["report", str(schema_file), "--out", str(out_dir)]
        )
        assert code == EXIT_OK
        assert (out_dir / "health.txt").exists()
        assert "OK" in (out_dir / "health.txt").read_text()
