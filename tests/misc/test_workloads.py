"""Tests for the workload generators (schemas and populations)."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analyzer import analyze
from repro.workloads import SchemaShape, generate_population, generate_schema


class TestSchemaGenerator:
    def test_deterministic_per_seed(self):
        first = generate_schema(SchemaShape(entity_types=10), seed=3)
        second = generate_schema(SchemaShape(entity_types=10), seed=3)
        assert first == second

    def test_different_seeds_differ(self):
        first = generate_schema(SchemaShape(entity_types=10), seed=3)
        second = generate_schema(SchemaShape(entity_types=10), seed=4)
        assert first != second

    def test_shape_controls_entity_count(self):
        schema = generate_schema(SchemaShape(entity_types=17), seed=1)
        assert schema.stats()["nolots"] == 17

    def test_generated_schemas_analyze_clean(self):
        for seed in range(5):
            schema = generate_schema(SchemaShape(entity_types=12), seed=seed)
            report = analyze(schema)
            assert report.errors == [], [str(d) for d in report.errors][:3]

    def test_rich_constraints_add_set_algebra(self):
        plain = generate_schema(SchemaShape(entity_types=15), seed=9)
        rich = generate_schema(
            SchemaShape(entity_types=15, rich_constraints=True), seed=9
        )
        plain_algebra = len(plain.subsets()) + len(plain.equalities())
        rich_algebra = len(rich.subsets()) + len(rich.equalities())
        assert rich_algebra > plain_algebra

    def test_exclusion_groups_bounded(self):
        schema = generate_schema(
            SchemaShape(entity_types=30, subtype_ratio=0.5,
                        exclusion_groups=2),
            seed=2,
        )
        assert len(schema.exclusions()) <= 2


class TestPopulationGenerator:
    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        schema_seed=st.integers(min_value=0, max_value=100),
        population_seed=st.integers(min_value=0, max_value=100),
    )
    def test_generated_populations_are_always_valid(
        self, schema_seed, population_seed
    ):
        schema = generate_schema(
            SchemaShape(entity_types=7, exclusion_groups=1), seed=schema_seed
        )
        population = generate_population(
            schema, instances_per_type=4, seed=population_seed
        )
        violations = population.check()
        assert violations == [], [str(v) for v in violations][:3]

    def test_optional_fill_controls_density(self):
        schema = generate_schema(
            SchemaShape(entity_types=10, optional_ratio=0.8), seed=5
        )
        sparse = generate_population(schema, optional_fill=0.0, seed=5)
        dense = generate_population(schema, optional_fill=1.0, seed=5)
        count = lambda pop: sum(  # noqa: E731
            len(pop.fact_instances(f.name)) for f in schema.fact_types
        )
        assert count(dense) > count(sparse)

    def test_deterministic_per_seed(self):
        schema = generate_schema(SchemaShape(entity_types=8), seed=6)
        assert generate_population(schema, seed=1) == generate_population(
            schema, seed=1
        )


class TestUnsatisfiableSchemas:
    def _contradictory(self):
        from repro.brm import SchemaBuilder, char

        b = SchemaBuilder("Unsat")
        b.nolot("P").lot("K", char(3))
        b.fact("f", ("P", "x"), ("K", "y"))
        b.frequency(("f", "x"), 2, 3, name="F1")
        b.frequency(("f", "x"), 5, 9, name="F2")
        return b.build()

    def test_generate_population_fails_fast_with_proof(self):
        from repro.errors import PopulationError
        from repro.workloads import generate_population

        with pytest.raises(PopulationError, match="no common play count"):
            generate_population(self._contradictory(), seed=1)

    def test_generate_bulk_population_fails_fast_with_proof(self):
        from repro.errors import PopulationError
        from repro.workloads import generate_bulk_population

        with pytest.raises(PopulationError, match="F1"):
            generate_bulk_population(
                self._contradictory(), target_rows=100, seed=1
            )
