"""Integration tests on the CRIS case — the paper's running example."""

import pytest

from repro.analyzer import analyze
from repro.cris import cris_schema, populate_cris
from repro.mapper import MappingOptions, NullPolicy, SublinkPolicy, map_schema
from repro.ridl import ConceptualQuery, FactSelection, QueryCompiler, SubtypeFilter


@pytest.fixture(scope="module")
def schema():
    return cris_schema()


@pytest.fixture(scope="module")
def population(schema):
    return populate_cris(schema)


class TestCrisSchema:
    def test_analyzes_clean(self, schema):
        report = analyze(schema)
        assert report.is_mappable
        assert report.errors == []

    def test_population_is_valid(self, schema, population):
        assert population.is_valid(), [str(v) for v in population.check()][:5]

    def test_every_nolot_referable(self, schema):
        from repro.brm import ReferenceResolver

        resolver = ReferenceResolver(schema)
        assert resolver.non_referable() == set()


class TestCrisMappings:
    POLICY_MATRIX = [
        MappingOptions(),
        MappingOptions(null_policy=NullPolicy.NOT_ALLOWED),
        MappingOptions(sublink_policy=SublinkPolicy.INDICATOR),
        MappingOptions(sublink_policy=SublinkPolicy.TOGETHER),
    ]

    @pytest.mark.parametrize(
        "options",
        POLICY_MATRIX,
        ids=["default", "no-nulls", "indicator", "together"],
    )
    def test_round_trip(self, schema, population, options):
        result = map_schema(schema, options)
        canonical = result.canonicalize(result.state.to_canonical(population))
        database = result.state_map.forward(canonical)
        assert database.is_valid(), [str(v) for v in database.check()][:5]
        assert result.state_map.backward(database) == canonical

    def test_many_to_many_relations_exist(self, schema):
        result = map_schema(schema)
        names = {r.name for r in result.relational.relations}
        assert "assigned_to" in names
        assert "committee_member" in names

    @pytest.mark.parametrize("dialect", ["sql2", "oracle", "ingres", "db2", "sybase"])
    def test_all_dialects_emit_all_tables(self, schema, dialect):
        result = map_schema(schema)
        ddl = result.sql(dialect)
        assert ddl.count("CREATE TABLE") == len(result.relational.relations)


class TestCrisQueries:
    def test_referee_assignments(self, schema, population):
        result = map_schema(schema)
        database = result.forward(population)
        compiler = QueryCompiler(result)
        compiled = compiler.compile(
            ConceptualQuery(
                "Paper",
                selections=(
                    FactSelection("Paper_has_Title", optional=False),
                    FactSelection("authorship", optional=False),
                ),
            )
        )
        answers = compiler.execute(compiled, database)
        by_paper = {row["Paper"]: row["authorship"] for row in answers}
        assert by_paper == {
            "P1": "Ann Smith",
            "P2": "Bob Jones",
            "P3": "Carol King",
        }

    def test_program_papers_only(self, schema, population):
        result = map_schema(schema)
        database = result.forward(population)
        compiler = QueryCompiler(result)
        compiled = compiler.compile(
            ConceptualQuery(
                "Paper",
                selections=(FactSelection("Paper_has_Title", optional=False),),
                filters=(SubtypeFilter("Program_Paper"),),
            )
        )
        answers = compiler.execute(compiled, database)
        assert {row["Paper"] for row in answers} == {"P1", "P2"}

    def test_map_report_covers_cris(self, schema):
        result = map_schema(schema)
        report = result.map_report()
        for fact in schema.fact_types:
            assert f"ROLE {fact.first.name}" in report
        for relation in result.relational.relations:
            assert f"TABLE {relation.name}" in report
