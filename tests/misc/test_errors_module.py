"""Tests for the exception hierarchy."""

import pytest

from repro import errors


class TestHierarchy:
    def test_all_errors_derive_from_ridl_error(self):
        for name in dir(errors):
            attribute = getattr(errors, name)
            if isinstance(attribute, type) and issubclass(
                attribute, Exception
            ):
                assert issubclass(attribute, errors.RidlError), name

    def test_schema_errors_under_schema_error(self):
        assert issubclass(errors.DuplicateNameError, errors.SchemaError)
        assert issubclass(errors.UnknownElementError, errors.SchemaError)
        assert issubclass(errors.ConstraintError, errors.SchemaError)

    def test_mapping_errors(self):
        assert issubclass(errors.NotReferableError, errors.MappingError)
        assert issubclass(errors.TransformationError, errors.MappingError)

    def test_engine_errors(self):
        assert issubclass(errors.IntegrityViolation, errors.EngineError)


class TestMessages:
    def test_duplicate_name_carries_context(self):
        exc = errors.DuplicateNameError("object type", "Paper")
        assert exc.kind == "object type"
        assert exc.name == "Paper"
        assert "Paper" in str(exc)

    def test_unknown_element_carries_context(self):
        exc = errors.UnknownElementError("fact type", "nope")
        assert "fact type" in str(exc)

    def test_not_referable_names_the_type(self):
        exc = errors.NotReferableError("Ghost")
        assert exc.nolot_name == "Ghost"
        assert "analyzer" in str(exc)

    def test_integrity_violation_carries_constraint(self):
        exc = errors.IntegrityViolation("C_EQ$_3", "views differ")
        assert exc.constraint_name == "C_EQ$_3"
        assert str(exc).startswith("constraint C_EQ$_3")

    def test_dsl_syntax_error_carries_position(self):
        exc = errors.DslSyntaxError("bad token", 3, 7)
        assert (exc.line, exc.column) == (3, 7)
        assert "line 3" in str(exc)


class TestCatchability:
    def test_one_except_clause_covers_the_library(self):
        from repro.brm import SchemaBuilder

        with pytest.raises(errors.RidlError):
            SchemaBuilder().unique(42)
