"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import main
from repro.cris import figure6_schema
from repro.dsl import to_dsl


@pytest.fixture
def schema_file(tmp_path):
    path = tmp_path / "figure6.ridl"
    path.write_text(to_dsl(figure6_schema()))
    return path


def run(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestAnalyze:
    def test_clean_schema_exits_zero(self, schema_file):
        code, output = run(["analyze", str(schema_file)])
        assert code == 0
        assert "MAPPABLE" in output

    def test_broken_schema_exits_one(self, tmp_path):
        path = tmp_path / "bad.ridl"
        path.write_text(
            "schema Bad\nnolot Ghost\nlot K : char(3)\n"
            "attribute Ghost has K\n"
        )
        code, output = run(["analyze", str(path)])
        assert code == 1
        assert "NOT_REFERABLE" in output

    def test_missing_file_exits_two(self):
        code, output = run(["analyze", "no_such_file.ridl"])
        assert code == 2
        assert "error:" in output

    def test_syntax_error_exits_two(self, tmp_path):
        path = tmp_path / "syntax.ridl"
        path.write_text("widget Nope\n")
        code, output = run(["analyze", str(path)])
        assert code == 2
        assert "error:" in output


class TestMap:
    def test_default_mapping_prints_sql2(self, schema_file):
        code, output = run(["map", str(schema_file)])
        assert code == 0
        assert "CREATE TABLE Paper" in output
        assert "CREATE DOMAIN" in output

    def test_dialect_choice(self, schema_file):
        code, output = run(
            ["map", str(schema_file), "--dialect", "oracle"]
        )
        assert code == 0
        assert "ORACLE" in output
        assert "CREATE DOMAIN" not in output

    def test_sublink_policy_flag(self, schema_file):
        code, output = run(
            ["map", str(schema_file), "--sublinks", "TOGETHER"]
        )
        assert code == 0
        assert "CREATE TABLE Program_Paper" not in output
        assert "Is_Invited_Paper" in output

    def test_sublink_override_flag(self, schema_file):
        code, output = run(
            [
                "map",
                str(schema_file),
                "--sublink-override",
                "Invited_Paper_IS_Paper=INDICATOR",
            ]
        )
        assert code == 0
        assert "Is_Invited_Paper" in output
        assert "CREATE TABLE Program_Paper" in output

    def test_bad_override_rejected(self, schema_file):
        code, output = run(
            [
                "map",
                str(schema_file),
                "--sublink-override",
                "x=NOPE",
            ]
        )
        assert code == 2

    def test_omit_flag(self, schema_file):
        code, output = run(
            ["map", str(schema_file), "--omit", "Invited_Paper"]
        )
        assert code == 0
        assert "CREATE TABLE Invited_Paper" not in output
        assert "omitted by mapping option" in output


class TestReport:
    def test_writes_full_artifact_set(self, schema_file, tmp_path):
        out_dir = tmp_path / "build"
        code, output = run(
            ["report", str(schema_file), "--out", str(out_dir)]
        )
        assert code == 0
        names = {p.name for p in out_dir.iterdir()}
        assert "schema.sql2.sql" in names
        assert "schema.oracle.sql" in names
        assert "schema.sybase.sql" in names
        assert "map_report.txt" in names
        assert "trace.txt" in names
        assert "FORWARDS MAP" in (out_dir / "map_report.txt").read_text()
        # The printed list mentions each written file.
        assert output.count("schema.") == len(
            [n for n in names if n.startswith("schema.")]
        )


class TestShow:
    def test_ascii(self, schema_file):
        code, output = run(["show", str(schema_file)])
        assert code == 0
        assert "BINARY SCHEMA figure6" in output

    def test_dot(self, schema_file):
        code, output = run(["show", str(schema_file), "--format", "dot"])
        assert code == 0
        assert output.startswith('digraph "figure6"')


class TestAdvise:
    def test_text_report(self, schema_file):
        code, output = run(["advise", str(schema_file), "--workers", "1"])
        assert code == 0
        assert "option advisor" in output
        assert "winner:" in output
        assert "9 candidates" in output  # 3 null x 3 sublink policies

    def test_json_report(self, schema_file):
        import json

        code, output = run(
            [
                "advise",
                str(schema_file),
                "--workers",
                "1",
                "--format",
                "json",
            ]
        )
        assert code == 0
        payload = json.loads(output)
        assert payload["winner"]
        assert payload["ranked"][0]["rank"] == 1

    def test_worker_count_does_not_change_output(self, schema_file):
        argv = ["advise", str(schema_file), "--format", "json", "--top-k", "9"]
        code_serial, serial = run(argv + ["--workers", "1"])
        code_parallel, parallel = run(argv + ["--workers", "2"])
        assert code_serial == code_parallel == 0
        assert serial == parallel

    def test_top_k_limits_rows(self, schema_file):
        code, output = run(
            ["advise", str(schema_file), "--workers", "1", "--top-k", "2"]
        )
        assert code == 0
        ranks = [
            line.split()[0]
            for line in output.splitlines()
            if line.strip() and line.split()[0].isdigit()
        ]
        assert ranks == ["1", "2"]

    def test_axes_narrow_the_lattice(self, schema_file):
        code, output = run(
            [
                "advise",
                str(schema_file),
                "--workers",
                "1",
                "--nulls-axis",
                "DEFAULT",
                "--sublinks-axis",
                "SEPARATE,TOGETHER",
            ]
        )
        assert code == 0
        assert "2 candidates" in output

    def test_omit_axis_toggles(self, schema_file):
        code, output = run(
            [
                "advise",
                str(schema_file),
                "--workers",
                "1",
                "--nulls-axis",
                "DEFAULT",
                "--sublinks-axis",
                "SEPARATE",
                "--omit-axis",
                "Invited_Paper",
            ]
        )
        assert code == 0
        assert "2 candidates" in output
        assert "omit(Invited_Paper)" in output

    def test_unknown_axis_policy_is_usage_error(self, schema_file):
        code, output = run(
            ["advise", str(schema_file), "--nulls-axis", "BOGUS"]
        )
        assert code == 2
        assert "unknown policy" in output

    def test_bad_combine_axis_is_usage_error(self, schema_file):
        code, output = run(
            ["advise", str(schema_file), "--combine-axis", "nonsense"]
        )
        assert code == 2
        assert "TARGET=SOURCE" in output
