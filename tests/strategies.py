"""Shared hypothesis strategies for randomized BRM schemas.

The randomized-schema recipes — a :class:`SchemaShape` driven by a
seeded :func:`generate_schema`, a palette of mapping-option sets, and
the SQL dialect roster — used to be restated in every property suite
(``tests/mapper/test_backward_columnar.py``,
``tests/brm/test_columnar.py``, ``tests/dsl/test_dsl_properties.py``,
…).  This module is the single home: import the named shapes and the
strategy factories instead of re-deriving them.

The strategies stay deliberately seed-based (hypothesis draws an
integer, :func:`generate_schema` expands it deterministically) so
failures shrink to a single reportable seed and the CI fuzzer can
replay any example from its log line.
"""

from hypothesis import strategies as st

from repro.mapper import MappingOptions, NullPolicy, SublinkPolicy
from repro.sql import PROFILES
from repro.workloads import SchemaShape, generate_schema

#: The mapping-option palette property suites sweep: every sublink
#: policy, both restrictive null policies, and the paper's default.
OPTION_SETS = (
    MappingOptions(),
    MappingOptions(sublink_policy=SublinkPolicy.TOGETHER),
    MappingOptions(sublink_policy=SublinkPolicy.INDICATOR),
    MappingOptions(null_policy=NullPolicy.NOT_ALLOWED),
    MappingOptions(
        null_policy=NullPolicy.NOT_IN_KEYS,
        sublink_policy=SublinkPolicy.INDICATOR,
    ),
)

#: Six entity types, half the subtypes carrying their own identifier:
#: the workhorse shape for mapper/state-map equivalence suites.
DEFAULT_SHAPE = SchemaShape(entity_types=6, subtype_own_identifier_ratio=0.5)

#: Five entity types with the full rich-constraint repertoire
#: (subsets, equalities, exclusions, total unions, values).
RICH_SHAPE = SchemaShape(entity_types=5, rich_constraints=True)

#: The DSL round-trip shape: exclusion groups exercise the renderer's
#: multi-item constraint syntax.
DSL_SHAPE = SchemaShape(entity_types=6, exclusion_groups=1)

#: Compact shape for population-heavy suites where every example
#: builds and mutates full populations.
SMALL_SHAPE = SchemaShape(entity_types=4)

#: Everything at once: subtypes with own identifiers, exclusion
#: groups, and the rich-constraint repertoire.
FULL_SHAPE = SchemaShape(
    entity_types=6,
    exclusion_groups=1,
    subtype_own_identifier_ratio=0.5,
    rich_constraints=True,
)

#: Six plain entity types, no extras — for lossless round trips
#: where the schema is scenery, not subject.
PLAIN_SHAPE = SchemaShape(entity_types=6)


def seeds(max_seed: int = 200) -> st.SearchStrategy:
    """An integer seed for :func:`generate_schema`."""
    return st.integers(min_value=0, max_value=max_seed)


def schemas(
    shape: SchemaShape = DEFAULT_SHAPE, max_seed: int = 200
) -> st.SearchStrategy:
    """A generated :class:`BinarySchema` from a seeded shape."""
    return st.builds(
        lambda seed: generate_schema(shape, seed=seed), seeds(max_seed)
    )


def mapping_options() -> st.SearchStrategy:
    """One of the canonical option sets."""
    return st.sampled_from(OPTION_SETS)


def dialects() -> st.SearchStrategy:
    """A registered SQL dialect key (``sql2``, ``oracle``, …)."""
    return st.sampled_from(sorted(PROFILES))


@st.composite
def schema_shapes(draw) -> SchemaShape:
    """A fully randomized :class:`SchemaShape`.

    Unlike the named shapes above (fixed shape, random seed), this
    varies every axis the generator exposes — entity count, subtype
    and satellite density, alternate identifiers, exclusion groups,
    the rich-constraint repertoire — for fuzzers that must cover the
    whole schema space, like the reverse round-trip harness.
    """
    ratio = st.floats(min_value=0.0, max_value=1.0)
    low = draw(st.integers(min_value=0, max_value=2))
    return SchemaShape(
        entity_types=draw(st.integers(min_value=2, max_value=12)),
        attributes_per_entity=(
            low,
            draw(st.integers(min_value=max(low, 2), max_value=6)),
        ),
        optional_ratio=draw(ratio),
        subtype_ratio=draw(st.floats(min_value=0.0, max_value=0.6)),
        subtype_own_identifier_ratio=draw(ratio),
        many_to_many_per_entity=draw(ratio),
        alternate_identifier_ratio=draw(st.floats(min_value=0.0, max_value=0.5)),
        exclusion_groups=draw(st.integers(min_value=0, max_value=3)),
        lot_nolot_pool=draw(st.integers(min_value=2, max_value=8)),
        rich_constraints=draw(st.booleans()),
        subset_ratio=draw(ratio),
        value_ratio=draw(ratio),
    )


@st.composite
def shaped_schemas(draw, max_seed: int = 10**6):
    """A schema generated from a fully randomized shape and seed."""
    shape = draw(schema_shapes())
    seed = draw(st.integers(min_value=0, max_value=max_seed))
    return generate_schema(shape, seed=seed)
