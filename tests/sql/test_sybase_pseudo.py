"""Tests for the SYBASE profile and the pseudo-SQL renderers."""

import pytest

from repro.cris import figure6_schema
from repro.mapper import MappingOptions, SublinkPolicy, map_schema
from repro.relational import (
    CandidateKey,
    CheckConstraint,
    EqualityViewConstraint,
    ForeignKey,
    NotNull,
    PrimaryKey,
    SelectSpec,
    SubsetViewConstraint,
)
from repro.sql import PROFILES, as_comment, render_constraint


@pytest.fixture(scope="module")
def result():
    return map_schema(
        figure6_schema(),
        MappingOptions(
            sublink_overrides=(
                ("Invited_Paper_IS_Paper", SublinkPolicy.INDICATOR),
            )
        ),
    )


class TestSybase:
    def test_registered(self):
        assert "sybase" in PROFILES

    def test_checks_are_native(self, result):
        ddl = result.sql("sybase")
        assert "CHECK( -- Value Restriction" in ddl

    def test_foreign_keys_commented(self, result):
        # 1989 SYBASE had no declarative referential integrity.
        ddl = result.sql("sybase")
        assert "-- REFERENCES Paper" in ddl

    def test_datetime_type(self, result):
        ddl = result.sql("sybase")
        assert "DATETIME -- DOMAIN D_Date" in ddl


class TestPseudoRenderers:
    def test_primary_key_rendering(self):
        text = render_constraint(
            PrimaryKey("C_KEY$_1", relation="Paper", columns=("Paper_Id",))
        )
        assert "PRIMARY KEY ( Paper_Id )" in text
        assert "CONSTRAINT C_KEY$_1" in text

    def test_candidate_key_rendering(self):
        text = render_constraint(
            CandidateKey("C_KEY$_2", relation="Paper", columns=("A", "B"))
        )
        assert "UNIQUE ( A, B )" in text

    def test_foreign_key_rendering(self):
        text = render_constraint(
            ForeignKey(
                "C_FKEY$_1",
                relation="Sub",
                columns=("K",),
                referenced_relation="Super",
                referenced_columns=("K",),
            )
        )
        assert "FOREIGN KEY Sub ( K )" in text
        assert "REFERENCES Super ( K )" in text

    def test_check_rendering_carries_comment(self):
        text = render_constraint(
            CheckConstraint(
                "C_DE$_1",
                relation="R",
                predicate=NotNull("a"),
                comment="Dependent Existence",
            )
        )
        assert "CHECK( -- Dependent Existence" in text

    def test_equality_view_rendering_matches_paper_layout(self):
        text = render_constraint(
            EqualityViewConstraint(
                "C_EQ$_3",
                left=SelectSpec("Program_Paper", ("Paper_ProgramId",)),
                right=SelectSpec(
                    "Paper",
                    ("Paper_ProgramId_Is",),
                    where=NotNull("Paper_ProgramId_Is"),
                ),
            )
        )
        lines = text.splitlines()
        assert lines[0] == "EQUALITY VIEW CONSTRAINT :"
        assert "( SELECT Paper_ProgramId" in lines[1]
        assert "IS EQUAL TO" in text
        assert "WHERE ( Paper_ProgramId_Is IS NOT NULL )" in text
        assert lines[-1] == "CONSTRAINT C_EQ$_3"

    def test_subset_view_rendering(self):
        text = render_constraint(
            SubsetViewConstraint(
                "C_SUB$_1",
                subset=SelectSpec("A", ("x",)),
                superset=SelectSpec("B", ("y",)),
            )
        )
        assert "SUBSET VIEW CONSTRAINT :" in text
        assert "IS CONTAINED IN" in text

    def test_as_comment_prefixes_every_line(self):
        commented = as_comment("one\n\ntwo")
        assert commented.splitlines() == ["-- one", "--", "-- two"]
