"""Tests for the SQL dialect emitters against the paper's fragment."""

import pytest

from repro.cris import figure6_schema
from repro.errors import SqlGenerationError
from repro.mapper import MappingOptions, SublinkPolicy, map_schema
from repro.sql import generate_sql

INDICATOR_INVITED = ("Invited_Paper_IS_Paper", SublinkPolicy.INDICATOR)


@pytest.fixture(scope="module")
def result():
    # The option combination whose output the paper prints in §4.3.
    return map_schema(
        figure6_schema(),
        MappingOptions(sublink_overrides=(INDICATOR_INVITED,)),
    )


class TestSql2:
    def test_program_paper_table_matches_fragment(self, result):
        ddl = result.sql("sql2")
        index = ddl.index("CREATE TABLE Program_Paper")
        block = ddl[index:index + 700]
        assert "Paper_ProgramId" in block
        assert "D_Paper_ProgramId -- DATA TYPE CHAR(2)" in block
        assert "NOT NULL" in block
        assert "PRIMARY KEY" in block
        assert "REFERENCES Paper ( Paper_ProgramId_Is )" in block
        assert "CONSTRAINT C_FKEY$" in block
        assert "D_Person -- DATA TYPE CHAR(30)" in block
        assert "-- NULL" in block  # nullable Person_presenting
        assert "D_Session -- DATA TYPE NUMERIC(3)" in block

    def test_equality_view_emitted_as_comment(self, result):
        ddl = result.sql("sql2")
        assert "-- EQUALITY VIEW CONSTRAINT :" in ddl
        assert "--     ( SELECT Paper_ProgramId" in ddl
        assert "--     IS EQUAL TO" in ddl
        assert "-- CONSTRAINT C_EQ$" in ddl

    def test_domains_emitted(self, result):
        ddl = result.sql("sql2")
        assert "CREATE DOMAIN D_Paper_ProgramId CHAR(2);" in ddl
        assert "CREATE DOMAIN D_Session NUMERIC(3);" in ddl

    def test_check_constraints_native_in_sql2(self, result):
        ddl = result.sql("sql2")
        assert "CHECK( -- Value Restriction" in ddl


class TestOracle:
    def test_no_domains_types_inline(self, result):
        ddl = result.sql("oracle")
        assert "CREATE DOMAIN" not in ddl
        assert "NUMBER(3) -- DOMAIN D_Session" in ddl

    def test_checks_become_comments(self, result):
        ddl = result.sql("oracle")
        assert "CHECK(" not in ddl.replace("-- CHECK(", "")
        assert "-- CHECK(" in ddl

    def test_named_constraints_kept(self, result):
        ddl = result.sql("oracle")
        assert "CONSTRAINT C_KEY$" in ddl


class TestIngresAndDb2:
    def test_ingres_has_no_named_constraints(self, result):
        ddl = result.sql("ingres")
        # Constraint names survive only as comments.
        for line in ddl.splitlines():
            if "CONSTRAINT C_" in line:
                assert line.lstrip().startswith("--"), line

    def test_ingres_foreign_keys_commented(self, result):
        ddl = result.sql("ingres")
        assert "-- REFERENCES Paper" in ddl

    def test_db2_types(self, result):
        ddl = result.sql("db2")
        assert "DECIMAL(3) -- DOMAIN D_Session" in ddl

    def test_all_dialects_cover_all_tables(self, result):
        for dialect in ("sql2", "oracle", "ingres", "db2"):
            ddl = result.sql(dialect)
            for relation in result.relational.relations:
                assert f"CREATE TABLE {relation.name}" in ddl


class TestPseudoAndErrors:
    def test_pseudo_dialect_lists_constraints(self, result):
        text = result.sql("pseudo")
        assert "EQUALITY VIEW CONSTRAINT :" in text
        assert "PRIMARY KEY" in text

    def test_unknown_dialect_rejected(self, result):
        with pytest.raises(SqlGenerationError):
            result.sql("postgres")

    def test_bare_schema_accepted(self, result):
        ddl = generate_sql(result.relational, "sql2")
        assert "CREATE TABLE Paper" in ddl

    def test_pseudo_constraints_emitted_as_comments(self):
        from repro.brm import SchemaBuilder, char

        b = SchemaBuilder("s")
        b.nolot("Committee").lot("CName", char(20))
        b.lot_nolot("Person", char(30))
        b.identifier("Committee", "CName")
        b.fact("member", ("Committee", "having"), ("Person", "serving"),
               unique="pair")
        b.frequency(("member", "having"), 2, 5)
        result = map_schema(b.build())
        ddl = result.sql("sql2")
        assert "Constraints Without Relational Counterpart" in ddl
        assert "FREQUENCY" in ddl

    def test_constraint_density_comment_volume(self, result):
        # The paper: "approx. 1 to 1.2 pages per table" including the
        # generated constraint text; our DDL must carry substantial
        # constraint content per table, not bare CREATE TABLEs.
        ddl = result.sql("sql2")
        constraint_lines = [
            line
            for line in ddl.splitlines()
            if "CONSTRAINT" in line or "CHECK" in line or "REFERENCES" in line
        ]
        assert len(constraint_lines) >= 2 * len(result.relational.relations)
