"""The DDL parser: the byte-exact inverse of the emitter.

``parse_ddl`` recovers a :class:`RelationalSchema` from emitted DDL.
The defining contract, checked here per dialect: re-emitting the
parsed schema through ``DdlEmitter`` reproduces the input text
byte-for-byte, and every parsed element carries provenance (line
number plus the clause that produced it).
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cris import cris_schema
from repro.mapper import MappingOptions, map_schema
from repro.sql import DdlEmitter, PROFILES
from repro.sql.parse import (
    DdlParseError,
    invert_type,
    parse_ddl,
    parse_predicate,
    resolve_profile,
)
from repro.relational.predicates import (
    Compare,
    InValues,
    IsNull,
    Not,
    NotNull,
    and_,
    dependent_existence,
    equal_existence,
    or_,
)
from repro.workloads import generate_schema

from tests.strategies import FULL_SHAPE, OPTION_SETS

DIALECTS = sorted(PROFILES)


def emitted(schema, options=MappingOptions(), dialect="sql2"):
    return map_schema(schema, options).sql(dialect)


class TestByteRoundTrip:
    @pytest.mark.parametrize("dialect", DIALECTS)
    def test_cris_reemits_identically(self, dialect):
        ddl = emitted(cris_schema(), dialect=dialect)
        parsed = parse_ddl(ddl, dialect)
        assert DdlEmitter(PROFILES[dialect]).emit(parsed.schema, ()) == ddl
        assert parsed.dropped == ()

    @pytest.mark.parametrize("dialect", DIALECTS)
    @pytest.mark.parametrize("options", OPTION_SETS)
    def test_generated_schema_reemits_identically(self, dialect, options):
        schema = generate_schema(FULL_SHAPE, seed=13)
        ddl = emitted(schema, options, dialect)
        parsed = parse_ddl(ddl, dialect)
        assert DdlEmitter(PROFILES[dialect]).emit(parsed.schema, ()) == ddl

    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(min_value=0, max_value=100),
        dialect=st.sampled_from(DIALECTS),
    )
    def test_random_schemas_reemit_identically(self, seed, dialect):
        schema = generate_schema(FULL_SHAPE, seed=seed)
        result = map_schema(schema, MappingOptions())
        emitter = DdlEmitter(PROFILES[dialect])
        parsed = parse_ddl(result.sql(dialect), dialect)
        # Pseudo constraints have no relational counterpart; the
        # parser records their names as dropped and the comparison
        # runs on the emitted schema proper.
        assert emitter.emit(parsed.schema, ()) == emitter.emit(
            result.relational, ()
        )
        assert set(parsed.dropped) == {
            p.name for p in result.pseudo_constraints
        }


class TestStructure:
    def test_relations_and_keys_recovered(self):
        result = map_schema(cris_schema(), MappingOptions())
        parsed = parse_ddl(result.sql("sql2"), "sql2")
        source = result.relational
        assert [r.name for r in parsed.schema.relations] == [
            r.name for r in source.relations
        ]
        for relation in source.relations:
            got = parsed.schema.relation(relation.name)
            assert got.attribute_names == relation.attribute_names
            for ours, theirs in zip(got.attributes, relation.attributes):
                assert ours.nullable == theirs.nullable
            pk = parsed.schema.primary_key(relation.name)
            assert pk is not None
            assert pk.columns == source.primary_key(relation.name).columns
            assert {
                (fk.columns, fk.referenced_relation)
                for fk in parsed.schema.foreign_keys(relation.name)
            } == {
                (fk.columns, fk.referenced_relation)
                for fk in source.foreign_keys(relation.name)
            }

    def test_provenance_lines_and_clauses(self):
        ddl = emitted(cris_schema())
        parsed = parse_ddl(ddl, "sql2")
        lines = ddl.splitlines()
        relations = [p for p in parsed.provenance if p.element == "relation"]
        assert relations, "no relation provenance recorded"
        for record in relations:
            # The recorded line is 1-based and names the relation.
            assert record.name in lines[record.line - 1]
        named = {p.name for p in parsed.provenance if p.element == "constraint"}
        for constraint in parsed.schema.constraints:
            assert constraint.name in named


class TestTypeInversion:
    @pytest.mark.parametrize("dialect", DIALECTS)
    def test_every_rendered_type_inverts(self, dialect):
        profile = PROFILES[dialect]
        result = map_schema(cris_schema(), MappingOptions())
        for domain in result.relational.domains:
            rendered = profile.render_type(domain.datatype)
            assert invert_type(profile, rendered) == domain.datatype

    def test_unknown_spelling_rejected(self):
        with pytest.raises(DdlParseError):
            invert_type(PROFILES["sql2"], "blob(16)")


class TestPredicates:
    @pytest.mark.parametrize(
        "predicate",
        [
            IsNull("A"),
            NotNull("A"),
            InValues("A", ("x", "y")),
            or_(IsNull("A"), NotNull("B")),
            and_(NotNull("A"), NotNull("B")),
            Not(IsNull("A")),
            Compare("A", "=", "Y"),
            dependent_existence("Dep", "Ref"),
            equal_existence(("A", "B")),
        ],
    )
    def test_round_trips_through_render(self, predicate):
        assert parse_predicate(predicate.render()) == predicate

    def test_bad_predicate_reports_line(self):
        with pytest.raises(DdlParseError):
            parse_predicate("A FROB 3", line=7)


class TestErrors:
    def test_empty_text(self):
        with pytest.raises(DdlParseError):
            parse_ddl("", "sql2")

    def test_garbage_reports_line(self):
        ddl = emitted(cris_schema())
        broken = ddl.replace("CREATE TABLE", "CREATE RUBBLE", 1)
        with pytest.raises(DdlParseError):
            parse_ddl(broken, "sql2")

    def test_unknown_dialect(self):
        with pytest.raises(Exception):
            resolve_profile("cobol")

    def test_wrong_dialect_grammar(self):
        # Oracle DDL fed to the db2 grammar must not silently parse
        # into a different schema: either it fails, or it reproduces
        # the same structure (dialects share the core grammar).
        ddl = emitted(cris_schema(), dialect="oracle")
        try:
            parsed = parse_ddl(ddl, "db2")
        except DdlParseError:
            return
        reference = parse_ddl(ddl, "oracle")
        assert [r.name for r in parsed.schema.relations] == [
            r.name for r in reference.schema.relations
        ]
