"""DialectProfile edge cases, against the emitter AND the parser.

Three 1989-era trouble spots, checked on both sides of the byte
round trip:

* **identifier length** — dialects with short limits (INGRES: 24,
  DB2: 18) would truncate long generated names, colliding names that
  differ only past the limit.  The lint pass must flag them; the
  emitter and parser must never truncate silently.
* **reserved words** — a generated name that is a dialect keyword is
  flagged by lint; the emitter writes it verbatim and the parser
  reads it back verbatim.
* **CHECK / FK / named-constraint support** — clauses a dialect
  cannot express are demoted to structured comments by the emitter;
  the parser must recover them as first-class constraints, so no
  dialect loses information relative to SQL2.
"""

import pytest

from repro.brm.datatypes import DataType, DataTypeKind
from repro.brm.builder import SchemaBuilder
from repro.lint import lint_schema
from repro.mapper import MappingOptions, map_schema
from repro.sql import DdlEmitter, PROFILES
from repro.sql.parse import parse_ddl
from repro.workloads import generate_schema

from tests.strategies import FULL_SHAPE

DIALECTS = sorted(PROFILES)
CHAR6 = DataType(DataTypeKind.CHAR, 6)


def build_schema(*entity_names):
    """One anchor entity per name, each with a char(6) identifier."""
    builder = SchemaBuilder("Edges")
    for name in entity_names:
        builder.nolot(name)
        builder.lot(f"{name}_Id", CHAR6)
        builder.identifier(name, f"{name}_Id")
    return builder.build()


def codes(report):
    return {d.code for d in report.diagnostics}


class TestIdentifierLength:
    def test_short_limit_dialects_flag_long_names(self):
        long_name = "Extraordinarily_Long_Entity_Name"
        schema = build_schema(long_name)
        flagged = lint_schema(schema, dialect="db2")
        assert "SQL203" in codes(flagged)

    def test_roomy_dialects_do_not_flag(self):
        schema = build_schema("Short")
        assert "SQL203" not in codes(lint_schema(schema, dialect="sql2"))

    @pytest.mark.parametrize("dialect", DIALECTS)
    def test_emitter_and_parser_never_truncate(self, dialect):
        # Two names identical up to every dialect's limit: silent
        # truncation anywhere in the pipeline would collide them.
        stem = "Entity_With_A_Very_Long_Shared_Prefix"
        schema = build_schema(f"{stem}_One", f"{stem}_Two")
        ddl = map_schema(schema, MappingOptions()).sql(dialect)
        assert f"{stem}_One" in ddl and f"{stem}_Two" in ddl
        parsed = parse_ddl(ddl, dialect)
        names = [r.name for r in parsed.schema.relations]
        assert f"{stem}_One" in names and f"{stem}_Two" in names
        assert len(set(names)) == len(names)

    def test_truncation_collision_is_flagged(self):
        stem = "Entity_With_A_Very_Long_Shared_Prefix"
        schema = build_schema(f"{stem}_One", f"{stem}_Two")
        # db2's 18-character limit folds both names together.
        flagged = lint_schema(schema, dialect="db2")
        too_long = [
            d for d in flagged.diagnostics if d.code == "SQL203"
        ]
        assert len(too_long) >= 2


class TestReservedWords:
    def test_reserved_name_is_flagged(self):
        schema = build_schema("User")
        # USER is reserved in the SQL2 profile.
        assert "SQL204" in codes(lint_schema(schema, dialect="sql2"))

    def test_non_reserved_is_clean(self):
        schema = build_schema("Paper")
        assert "SQL204" not in codes(lint_schema(schema, dialect="sql2"))

    @pytest.mark.parametrize("dialect", DIALECTS)
    def test_reserved_name_round_trips_verbatim(self, dialect):
        schema = build_schema("User", "Plan")
        ddl = map_schema(schema, MappingOptions()).sql(dialect)
        parsed = parse_ddl(ddl, dialect)
        names = {r.name for r in parsed.schema.relations}
        assert {"User", "Plan"} <= names


class TestConstraintSupport:
    """Unsupported clauses demote to comments, but parse back whole."""

    @pytest.fixture(scope="class")
    def per_dialect(self):
        schema = generate_schema(FULL_SHAPE, seed=13)
        result = map_schema(schema, MappingOptions())
        return {
            dialect: parse_ddl(result.sql(dialect), dialect)
            for dialect in DIALECTS
        }, result

    def test_roster_disagrees(self):
        # The suite below is only meaningful if the profiles differ.
        assert {p.supports_check for p in PROFILES.values()} == {True, False}
        assert {
            p.supports_foreign_keys for p in PROFILES.values()
        } == {True, False}
        assert {
            p.supports_named_constraints for p in PROFILES.values()
        } == {True, False}

    @pytest.mark.parametrize("dialect", DIALECTS)
    def test_checks_recovered_everywhere(self, per_dialect, dialect):
        parsed, result = per_dialect
        reference = {
            c.name
            for r in result.relational.relations
            for c in result.relational.checks(r.name)
        }
        got = {
            c.name
            for r in parsed[dialect].schema.relations
            for c in parsed[dialect].schema.checks(r.name)
        }
        assert got == reference

    @pytest.mark.parametrize("dialect", DIALECTS)
    def test_foreign_keys_recovered_everywhere(self, per_dialect, dialect):
        parsed, result = per_dialect
        reference = {
            (fk.name, fk.columns, fk.referenced_relation)
            for r in result.relational.relations
            for fk in result.relational.foreign_keys(r.name)
        }
        got = {
            (fk.name, fk.columns, fk.referenced_relation)
            for r in parsed[dialect].schema.relations
            for fk in parsed[dialect].schema.foreign_keys(r.name)
        }
        assert got == reference

    @pytest.mark.parametrize("dialect", DIALECTS)
    def test_constraint_names_recovered_everywhere(
        self, per_dialect, dialect
    ):
        # Even where the dialect cannot name constraints inline
        # (INGRES), the comment grammar carries the names through.
        parsed, result = per_dialect
        assert {c.name for c in parsed[dialect].schema.constraints} == {
            c.name for c in result.relational.constraints
        }

    def test_unsupported_check_is_commented(self):
        schema = generate_schema(FULL_SHAPE, seed=13)
        result = map_schema(schema, MappingOptions())
        for dialect in DIALECTS:
            if PROFILES[dialect].supports_check:
                continue
            for line in result.sql(dialect).splitlines():
                if "CHECK(" in line:
                    assert line.lstrip().startswith("--") or (
                        "CHECK(" in line.split("-- ", 1)[-1]
                        and "-- " in line
                    ), line

    def test_unsupported_fk_is_commented(self):
        schema = generate_schema(FULL_SHAPE, seed=13)
        result = map_schema(schema, MappingOptions())
        for dialect in DIALECTS:
            if PROFILES[dialect].supports_foreign_keys:
                continue
            for line in result.sql(dialect).splitlines():
                if "REFERENCES" in line:
                    assert "--" in line.split("REFERENCES")[0], line

    @pytest.mark.parametrize("dialect", DIALECTS)
    def test_reemission_stays_byte_stable(self, per_dialect, dialect):
        parsed, result = per_dialect
        emitter = DdlEmitter(PROFILES[dialect])
        assert emitter.emit(parsed[dialect].schema, ()) == emitter.emit(
            result.relational, ()
        )
