"""Tests for the textual schema DSL (lexer, parser, serializer)."""

import pytest

from repro.brm import RoleId, SublinkRef, char
from repro.cris import cris_schema, figure6_schema
from repro.dsl import parse, to_dsl, tokenize
from repro.dsl.lexer import TokenKind
from repro.errors import DslSyntaxError


class TestLexer:
    def test_words_numbers_punct(self):
        tokens = tokenize("lot K : char(6)")
        kinds = [t.kind for t in tokens]
        assert kinds == [
            TokenKind.WORD,
            TokenKind.WORD,
            TokenKind.PUNCT,
            TokenKind.WORD,
            TokenKind.PUNCT,
            TokenKind.NUMBER,
            TokenKind.PUNCT,
            TokenKind.NEWLINE,
            TokenKind.EOF,
        ]

    def test_hyphenated_keyword(self):
        tokens = tokenize("lot-nolot Person : char(30)")
        assert tokens[0].text == "lot-nolot"

    def test_comments_stripped(self):
        tokens = tokenize("nolot A -- a comment\nnolot B # another")
        words = [t.text for t in tokens if t.kind is TokenKind.WORD]
        assert words == ["nolot", "A", "nolot", "B"]

    def test_string_literal(self):
        tokens = tokenize("constraint V1 values S : 'A -- not a comment'")
        strings = [t.text for t in tokens if t.kind is TokenKind.STRING]
        assert strings == ["A -- not a comment"]

    def test_unterminated_string(self):
        with pytest.raises(DslSyntaxError):
            tokenize("values S : 'oops")

    def test_range_token(self):
        tokens = tokenize("frequency f.x 2 .. 5")
        assert any(t.text == ".." for t in tokens)

    def test_positions_reported(self):
        with pytest.raises(DslSyntaxError) as excinfo:
            tokenize("nolot A\nnolot @")
        assert excinfo.value.line == 2


class TestParser:
    def test_minimal_schema(self):
        schema = parse("schema S\nnolot A\n")
        assert schema.name == "S"
        assert schema.has_object_type("A")

    def test_fact_with_inline_flags(self):
        schema = parse(
            "schema S\nlot K : char(3)\nnolot A\n"
            "fact f ( A x [unique, total], K y [unique] )\n"
        )
        assert schema.is_unique(RoleId("f", "x"))
        assert schema.is_total(RoleId("f", "x"))
        assert schema.is_unique(RoleId("f", "y"))

    def test_pair_unique(self):
        schema = parse(
            "schema S\nnolot A\nnolot B\n"
            "fact f ( A x, B y ) [pair-unique]\n"
        )
        constraints = schema.uniqueness_constraints()
        assert len(constraints) == 1
        assert len(constraints[0].roles) == 2

    def test_identifier_and_attribute_sugar(self):
        schema = parse(
            "schema S\nnolot Paper\nlot Paper_Id : char(6)\n"
            "lot Title : char(50)\n"
            "identifier Paper by Paper_Id as has_id\n"
            "attribute Paper has Title as titled [total]\n"
        )
        assert schema.has_fact_type("has_id")
        assert schema.is_total(RoleId("titled", "with"))
        reference = [
            c for c in schema.uniqueness_constraints() if c.is_reference
        ]
        assert len(reference) == 1

    def test_subtype_with_link_name(self):
        schema = parse(
            "schema S\nnolot A\nnolot B\nsubtype B of A as B_under_A\n"
        )
        assert schema.has_sublink("B_under_A")

    def test_constraint_statements(self):
        schema = parse(
            "schema S\nnolot P\nlot K : char(3)\nlot L : char(3)\n"
            "fact f ( P x, K y )\nfact g ( P x, L y )\n"
            "constraint U1 unique f.x\n"
            "constraint total g.x\n"
            "constraint X1 exclusion : f.x, g.x\n"
            "constraint E1 equality : f.x, g.x\n"
            "constraint S1 subset f.x in g.x\n"
            "constraint F1 frequency f.y 1 .. 3\n"
            "constraint V1 values K : 'A', 'B'\n"
        )
        assert schema.has_constraint("U1")
        assert schema.has_constraint("X1")
        assert schema.has_constraint("S1")
        assert schema.has_constraint("F1")
        assert schema.has_constraint("V1")
        assert len(schema.totals()) == 1

    def test_sublink_items(self):
        schema = parse(
            "schema S\nnolot A\nnolot B\nnolot C\n"
            "subtype B of A\nsubtype C of A\n"
            "constraint X1 exclusion : sublink B_IS_A, sublink C_IS_A\n"
        )
        constraint = schema.constraint("X1")
        assert SublinkRef("B_IS_A") in constraint.items

    def test_numeric_with_scale(self):
        schema = parse("schema S\nlot Price : numeric(7, 2)\n")
        datatype = schema.object_type("Price").datatype
        assert datatype.length == 7
        assert datatype.scale == 2

    def test_errors_carry_position(self):
        with pytest.raises(DslSyntaxError) as excinfo:
            parse("schema S\nnolot\n")
        assert excinfo.value.line == 2

    def test_unknown_statement(self):
        with pytest.raises(DslSyntaxError):
            parse("widget A\n")

    def test_unknown_datatype(self):
        with pytest.raises(DslSyntaxError):
            parse("lot K : blob(4)\n")

    def test_unique_rejects_sublink_items(self):
        with pytest.raises(DslSyntaxError):
            parse(
                "schema S\nnolot A\nnolot B\nsubtype B of A\n"
                "constraint unique sublink B_IS_A\n"
            )

    def test_trailing_junk_rejected(self):
        with pytest.raises(DslSyntaxError):
            parse("nolot A B\n")


class TestRoundTrip:
    @pytest.mark.parametrize(
        "make", [figure6_schema, cris_schema], ids=["figure6", "cris"]
    )
    def test_exact_round_trip(self, make):
        schema = make()
        assert parse(to_dsl(schema)) == schema

    def test_round_trip_with_every_constraint_kind(self):
        source = (
            "schema Full\nnolot P\nnolot Q\nlot K : char(3)\n"
            "lot L : numeric(4)\nlot_free : date\n"
        )
        # Build programmatically instead (the DSL rejects odd names).
        from repro.brm import SchemaBuilder, date

        b = SchemaBuilder("Full")
        b.nolot("P").nolot("Q").lot("K", char(3)).lot_nolot("D", date())
        b.identifier("P", "K")
        b.subtype("Q", "P")
        b.attribute("Q", "D", fact="qd", total=True)
        b.fact("m", ("P", "x"), ("D", "y"), unique="pair")
        b.frequency(("m", "x"), 1, 4)
        b.values("K", ("A", "B"))
        b.exclusion(("qd", "with"), ("m", "x"))
        schema = b.build()
        assert parse(to_dsl(schema)) == schema
