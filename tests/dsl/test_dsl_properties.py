"""Property-based tests: DSL round trip over generated schemas."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.dsl import parse, to_dsl
from repro.workloads import SchemaShape, generate_schema


class TestDslRoundTripProperties:
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(seed=st.integers(min_value=0, max_value=500))
    def test_generated_schemas_round_trip(self, seed):
        schema = generate_schema(
            SchemaShape(entity_types=6, exclusion_groups=1), seed=seed
        )
        assert parse(to_dsl(schema)) == schema

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=100))
    def test_rich_constraint_schemas_round_trip(self, seed):
        schema = generate_schema(
            SchemaShape(entity_types=5, rich_constraints=True), seed=seed
        )
        assert parse(to_dsl(schema)) == schema

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=100))
    def test_serialization_is_deterministic(self, seed):
        schema = generate_schema(SchemaShape(entity_types=5), seed=seed)
        assert to_dsl(schema) == to_dsl(schema.copy())
