"""Property-based tests: DSL round trip over generated schemas.

``parse(to_dsl(schema)) == schema`` must hold for every schema the
workload generator can produce — including fully randomized shapes
covering every constraint kind the DSL can express (uniqueness,
totality, frequency, subset, equality, exclusion, total union,
value restrictions) — and the rendering itself must be deterministic.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.dsl import parse, to_dsl
from repro.workloads import generate_schema

from tests.strategies import (
    DSL_SHAPE,
    PLAIN_SHAPE,
    RICH_SHAPE,
    shaped_schemas,
)


class TestDslRoundTripProperties:
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(seed=st.integers(min_value=0, max_value=500))
    def test_generated_schemas_round_trip(self, seed):
        schema = generate_schema(DSL_SHAPE, seed=seed)
        assert parse(to_dsl(schema)) == schema

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=100))
    def test_rich_constraint_schemas_round_trip(self, seed):
        schema = generate_schema(RICH_SHAPE, seed=seed)
        assert parse(to_dsl(schema)) == schema

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=100))
    def test_serialization_is_deterministic(self, seed):
        schema = generate_schema(PLAIN_SHAPE, seed=seed)
        assert to_dsl(schema) == to_dsl(schema.copy())

    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(schema=shaped_schemas())
    def test_round_trip_over_randomized_shapes(self, schema):
        """The general guarantee: any generatable schema survives.

        The shape itself is drawn at random, so every constraint kind
        — and every combination the generator can compose — passes
        through the renderer and back.
        """
        rendered = to_dsl(schema)
        assert parse(rendered) == schema
        # A second render of the parsed schema is byte-identical: the
        # renderer is a canonical form, not merely parseable output.
        assert to_dsl(parse(rendered)) == rendered
