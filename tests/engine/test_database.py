"""Tests for the in-memory relational engine."""

import pytest

from repro.brm import char, numeric
from repro.engine import Database
from repro.errors import EngineError, IntegrityViolation
from repro.relational import (
    Attribute,
    CandidateKey,
    CheckConstraint,
    Domain,
    EqualityViewConstraint,
    ForeignKey,
    IsNull,
    NotNull,
    PrimaryKey,
    Relation,
    RelationalSchema,
    SelectSpec,
    SubsetViewConstraint,
    dependent_existence,
)


@pytest.fixture
def schema():
    s = RelationalSchema("conf")
    s.add_domain(Domain("D_Id", char(6)))
    s.add_domain(Domain("D_Session", numeric(3)))
    s.add_relation(
        Relation(
            "Paper",
            (
                Attribute("Paper_Id", "D_Id"),
                Attribute("Paper_ProgramId_Is", "D_Id", nullable=True),
            ),
        )
    )
    s.add_relation(
        Relation(
            "Program_Paper",
            (
                Attribute("Paper_ProgramId", "D_Id"),
                Attribute("Session_comprising", "D_Session"),
            ),
        )
    )
    s.add_constraint(PrimaryKey("PK_P", relation="Paper", columns=("Paper_Id",)))
    s.add_constraint(
        PrimaryKey("PK_PP", relation="Program_Paper", columns=("Paper_ProgramId",))
    )
    s.add_constraint(
        ForeignKey(
            "C_FKEY$_8",
            relation="Program_Paper",
            columns=("Paper_ProgramId",),
            referenced_relation="Paper",
            referenced_columns=("Paper_ProgramId_Is",),
        )
    )
    return s


@pytest.fixture
def db(schema):
    return Database(schema)


class TestDataManipulation:
    def test_insert_fills_missing_with_null(self, db):
        row = db.insert("Paper", {"Paper_Id": "P1"})
        assert row == {"Paper_Id": "P1", "Paper_ProgramId_Is": None}

    def test_insert_rejects_unknown_columns(self, db):
        with pytest.raises(EngineError):
            db.insert("Paper", {"Nope": 1})

    def test_insert_unknown_relation(self, db):
        from repro.errors import UnknownElementError

        with pytest.raises(UnknownElementError):
            db.insert("Nope", {})

    def test_delete_with_predicate(self, db):
        db.insert("Paper", {"Paper_Id": "P1"})
        db.insert("Paper", {"Paper_Id": "P2", "Paper_ProgramId_Is": "G1"})
        removed = db.delete("Paper", IsNull("Paper_ProgramId_Is"))
        assert removed == 1
        assert db.count("Paper") == 1

    def test_delete_all(self, db):
        db.insert("Paper", {"Paper_Id": "P1"})
        assert db.delete("Paper") == 1
        assert db.count("Paper") == 0


class TestQueries:
    def test_select_where_and_projection(self, db):
        db.insert("Paper", {"Paper_Id": "P1", "Paper_ProgramId_Is": "G1"})
        db.insert("Paper", {"Paper_Id": "P2"})
        rows = db.select(
            "Paper", NotNull("Paper_ProgramId_Is"), columns=("Paper_Id",)
        )
        assert rows == [{"Paper_Id": "P1"}]

    def test_rows_returns_copies(self, db):
        db.insert("Paper", {"Paper_Id": "P1"})
        rows = db.rows("Paper")
        rows[0]["Paper_Id"] = "tampered"
        assert db.rows("Paper")[0]["Paper_Id"] == "P1"

    def test_evaluate_select_with_where(self, db):
        db.insert("Paper", {"Paper_Id": "P1", "Paper_ProgramId_Is": "G1"})
        db.insert("Paper", {"Paper_Id": "P2"})
        spec = SelectSpec(
            "Paper", ("Paper_ProgramId_Is",), where=NotNull("Paper_ProgramId_Is")
        )
        assert db.evaluate_select(spec) == {("G1",)}


class TestConstraintChecking:
    def test_valid_state(self, db):
        db.insert("Paper", {"Paper_Id": "P1", "Paper_ProgramId_Is": "G1"})
        db.insert(
            "Program_Paper", {"Paper_ProgramId": "G1", "Session_comprising": 3}
        )
        assert db.is_valid()

    def test_not_null_violation(self, db):
        db.insert("Program_Paper", {"Paper_ProgramId": "G1"})
        names = [v.constraint_name for v in db.check()]
        assert any("NOT NULL" in name for name in names)

    def test_primary_key_null_violation(self, db):
        db.insert("Paper", {})
        assert any(v.constraint_name == "PK_P" for v in db.check())

    def test_primary_key_duplicate(self, db):
        db.insert("Paper", {"Paper_Id": "P1"})
        db.insert("Paper", {"Paper_Id": "P1"})
        assert any("duplicate key" in str(v) for v in db.check())

    def test_nullable_primary_key_skips_entity_integrity(self, schema):
        # The paper's NULL ALLOWED option deliberately permits NULL in
        # "primary keys" for non-homogeneously referencible NOLOTs.
        relaxed = RelationalSchema("relaxed")
        relaxed.add_domain(Domain("D_Id", char(6)))
        relaxed.add_relation(
            Relation("R", (Attribute("K", "D_Id", nullable=True),))
        )
        relaxed.add_constraint(PrimaryKey("PK", relation="R", columns=("K",)))
        db = Database(relaxed)
        db.insert("R", {})
        db.insert("R", {})
        assert db.is_valid()  # two NULL keys are fine under the option

    def test_candidate_key_allows_nulls_but_not_duplicates(self, schema):
        schema.add_constraint(
            CandidateKey(
                "CK", relation="Paper", columns=("Paper_ProgramId_Is",)
            )
        )
        db = Database(schema)
        db.insert("Paper", {"Paper_Id": "P1"})
        db.insert("Paper", {"Paper_Id": "P2"})
        assert db.is_valid()  # several NULLs allowed
        db.insert("Paper", {"Paper_Id": "P3", "Paper_ProgramId_Is": "G1"})
        db.insert("Paper", {"Paper_Id": "P4", "Paper_ProgramId_Is": "G1"})
        assert any(v.constraint_name == "CK" for v in db.check())

    def test_foreign_key_violation(self, db):
        db.insert(
            "Program_Paper", {"Paper_ProgramId": "G9", "Session_comprising": 1}
        )
        assert any(v.constraint_name == "C_FKEY$_8" for v in db.check())

    def test_foreign_key_ignores_null_source(self, db):
        db.insert("Paper", {"Paper_Id": "P1"})  # NULL Paper_ProgramId_Is
        assert not any(v.constraint_name == "C_FKEY$_8" for v in db.check())

    def test_check_constraint(self, schema):
        schema.add_relation(
            Relation(
                "Wide",
                (
                    Attribute("A", "D_Id", nullable=True),
                    Attribute("B", "D_Id", nullable=True),
                ),
            )
        )
        schema.add_constraint(
            CheckConstraint(
                "C_DE$_1", relation="Wide", predicate=dependent_existence("A", "B")
            )
        )
        db = Database(schema)
        db.insert("Wide", {"A": "x"})  # A without B
        assert any(v.constraint_name == "C_DE$_1" for v in db.check())
        db.delete("Wide")
        db.insert("Wide", {"A": "x", "B": "y"})
        db.insert("Wide", {})
        assert db.is_valid()

    def test_equality_view_constraint(self, schema, db):
        schema.add_constraint(
            EqualityViewConstraint(
                "C_EQ$_3",
                left=SelectSpec("Program_Paper", ("Paper_ProgramId",)),
                right=SelectSpec(
                    "Paper",
                    ("Paper_ProgramId_Is",),
                    where=NotNull("Paper_ProgramId_Is"),
                ),
            )
        )
        db.insert("Paper", {"Paper_Id": "P1", "Paper_ProgramId_Is": "G1"})
        assert any(v.constraint_name == "C_EQ$_3" for v in db.check())
        db.insert(
            "Program_Paper", {"Paper_ProgramId": "G1", "Session_comprising": 2}
        )
        assert db.is_valid()

    def test_subset_view_constraint(self, schema, db):
        schema.add_constraint(
            SubsetViewConstraint(
                "C_SUB$_1",
                subset=SelectSpec("Program_Paper", ("Paper_ProgramId",)),
                superset=SelectSpec(
                    "Paper",
                    ("Paper_ProgramId_Is",),
                    where=NotNull("Paper_ProgramId_Is"),
                ),
            )
        )
        db.insert(
            "Program_Paper", {"Paper_ProgramId": "G1", "Session_comprising": 2}
        )
        assert any(v.constraint_name == "C_SUB$_1" for v in db.check())

    def test_validate_raises(self, db):
        db.insert("Paper", {})
        with pytest.raises(IntegrityViolation):
            db.validate()


class TestWholeDatabase:
    def test_copy_is_independent(self, db):
        db.insert("Paper", {"Paper_Id": "P1"})
        duplicate = db.copy()
        duplicate.insert("Paper", {"Paper_Id": "P2"})
        assert db.count("Paper") == 1
        assert duplicate.count("Paper") == 2

    def test_equality_ignores_insertion_order(self, db):
        other = db.copy()
        db.insert("Paper", {"Paper_Id": "P1"})
        db.insert("Paper", {"Paper_Id": "P2"})
        other.insert("Paper", {"Paper_Id": "P2"})
        other.insert("Paper", {"Paper_Id": "P1"})
        assert db == other

    def test_as_dict_snapshot(self, db):
        db.insert("Paper", {"Paper_Id": "P1"})
        snapshot = db.as_dict()
        assert snapshot["Paper"] == {("P1", None)}
