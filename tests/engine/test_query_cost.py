"""Tests for row-set operations and the I/O cost model."""

import pytest

from repro.brm import char, numeric
from repro.engine import (
    CostModel,
    TableStatistics,
    duplicates,
    entity_fetch_cost,
    equijoin,
    group_by,
    point_lookup_cost,
    project,
    relations_holding_entity,
    row_bytes,
    scan_cost,
    select_rows,
)
from repro.relational import Attribute, Domain, IsNull, Relation, RelationalSchema


class TestRowOps:
    ROWS = [
        {"a": 1, "b": "x"},
        {"a": 2, "b": None},
        {"a": 1, "b": "y"},
    ]

    def test_select_rows_with_predicate(self):
        assert select_rows(self.ROWS, IsNull("b")) == [{"a": 2, "b": None}]

    def test_select_rows_with_callable(self):
        assert len(select_rows(self.ROWS, lambda r: r["a"] == 1)) == 2

    def test_select_rows_none(self):
        assert select_rows(self.ROWS) == self.ROWS

    def test_project_distinct(self):
        assert project(self.ROWS, ["a"]) == [(1,), (2,)]

    def test_project_keeps_duplicates_when_asked(self):
        assert project(self.ROWS, ["a"], distinct=False) == [(1,), (2,), (1,)]

    def test_project_drop_null(self):
        assert project(self.ROWS, ["b"], drop_null=True) == [("x",), ("y",)]

    def test_group_by(self):
        groups = group_by(self.ROWS, ["a"])
        assert len(groups[(1,)]) == 2
        assert len(groups[(2,)]) == 1

    def test_duplicates(self):
        assert duplicates(self.ROWS, ["a"]) == [(1,)]

    def test_duplicates_ignores_null(self):
        rows = [{"k": None}, {"k": None}]
        assert duplicates(rows, ["k"]) == []
        assert duplicates(rows, ["k"], ignore_null=False) == [(None,)]


class TestEquijoin:
    def test_basic_join(self):
        left = [{"id": 1, "v": "a"}, {"id": 2, "v": "b"}]
        right = [{"ref": 1, "w": "x"}, {"ref": 1, "w": "y"}]
        joined = equijoin(left, right, [("id", "ref")])
        assert len(joined) == 2
        assert {row["r_w"] for row in joined} == {"x", "y"}
        assert all(row["l_id"] == 1 for row in joined)

    def test_null_never_joins(self):
        left = [{"id": None}]
        right = [{"ref": None}]
        assert equijoin(left, right, [("id", "ref")]) == []

    def test_requires_pairs(self):
        with pytest.raises(ValueError):
            equijoin([], [], [])


@pytest.fixture
def schema():
    s = RelationalSchema("s")
    s.add_domain(Domain("D_Id", char(6)))
    s.add_domain(Domain("D_Big", char(200)))
    s.add_relation(Relation("Narrow", (Attribute("Paper_Id", "D_Id"),)))
    s.add_relation(
        Relation(
            "Wide",
            (Attribute("Paper_Id_with", "D_Id"), Attribute("Blob", "D_Big")),
        )
    )
    return s


class TestCostModel:
    def test_row_bytes(self, schema):
        assert row_bytes(schema, "Narrow") == 6
        assert row_bytes(schema, "Wide") == 206

    def test_heap_pages_grow_with_rows(self):
        model = CostModel()
        assert model.heap_pages(100, 0) == 0
        assert model.heap_pages(100, 10) == 1
        assert model.heap_pages(100, 10_000) > model.heap_pages(100, 100)

    def test_index_depth_grows_logarithmically(self):
        model = CostModel()
        assert model.index_depth(1) == 1
        assert model.index_depth(10**6) >= model.index_depth(10**3)

    def test_scan_cost_wider_rows_cost_more(self, schema):
        stats = TableStatistics(default_rows=10_000)
        assert scan_cost(schema, "Wide", stats) > scan_cost(schema, "Narrow", stats)

    def test_point_lookup_cost(self, schema):
        stats = TableStatistics(default_rows=10_000)
        cost = point_lookup_cost(schema, "Narrow", stats)
        assert cost >= 2  # at least one index level + heap page

    def test_entity_fetch_cost_scales_with_table_count(self, schema):
        # The paper's motivation: facts fragmented over more tables
        # cost proportionally more I/O to reassemble.
        stats = TableStatistics(default_rows=10_000)
        one = entity_fetch_cost(schema, ["Narrow"], stats)
        two = entity_fetch_cost(schema, ["Narrow", "Wide"], stats)
        assert two > one

    def test_relations_holding_entity(self, schema):
        found = relations_holding_entity(schema, "Paper_Id")
        assert set(found) == {"Narrow", "Wide"}

    def test_statistics_override(self):
        stats = TableStatistics(default_rows=5, rows={"Big": 1_000_000})
        assert stats.row_count("Big") == 1_000_000
        assert stats.row_count("Other") == 5
