"""The tracer core: spans, nesting, activation scoping, threads,
metrics, and the disabled no-op path."""

import threading

from repro.observability import (
    NOOP_SPAN,
    MetricsRegistry,
    Span,
    Tracer,
    active,
    annotate,
    count,
    event,
    gauge,
    span,
)


class TestDisabledPath:
    def test_span_returns_shared_noop_when_inactive(self):
        assert active() is None
        assert span("anything") is NOOP_SPAN
        assert span("other", key="value") is NOOP_SPAN

    def test_noop_span_is_reentrant_and_chainable(self):
        with span("outer") as outer:
            with span("inner") as inner:
                assert inner is outer is NOOP_SPAN
        assert NOOP_SPAN.set("k", 1) is NOOP_SPAN

    def test_event_count_gauge_annotate_are_noops(self):
        event("mark")
        count("counter")
        gauge("gauge", 3.5)
        annotate(key="value")  # nothing to assert beyond "no crash"


class TestActivation:
    def test_activation_scopes_the_tracer(self):
        tracer = Tracer("t")
        assert active() is None
        with tracer.activate():
            assert active() is tracer
        assert active() is None

    def test_tracers_nest_innermost_wins(self):
        outer, inner = Tracer("outer"), Tracer("inner")
        with outer.activate():
            with inner.activate():
                with span("work"):
                    pass
            with span("outer-work"):
                pass
        assert [s.name for s in inner.roots] == ["work"]
        assert [s.name for s in outer.roots] == ["outer-work"]

    def test_activation_isolates_span_stack(self):
        # A tracer activated inside an open span must not attach its
        # spans to that span — the fork-safety property.
        outer, inner = Tracer("outer"), Tracer("inner")
        with outer.activate():
            with span("outer-span") as outer_span:
                with inner.activate():
                    with span("inner-span"):
                        pass
                with span("child"):
                    pass
            assert [c.name for c in outer_span.children] == ["child"]
        assert [s.name for s in inner.roots] == ["inner-span"]


class TestSpans:
    def test_nesting_builds_a_tree(self):
        tracer = Tracer("t")
        with tracer.activate():
            with span("root", schema="s"):
                with span("child-a"):
                    with span("grandchild"):
                        pass
                with span("child-b"):
                    pass
        (root,) = tracer.roots
        assert root.name == "root"
        assert root.attributes == {"schema": "s"}
        assert [c.name for c in root.children] == ["child-a", "child-b"]
        assert [c.name for c in root.children[0].children] == ["grandchild"]

    def test_timings_are_monotonic_and_contained(self):
        tracer = Tracer("t")
        with tracer.activate():
            with span("root"):
                with span("child"):
                    pass
        (root,) = tracer.roots
        (child,) = root.children
        assert root.start_ns <= child.start_ns
        assert child.end_ns <= root.end_ns
        assert root.duration_ns >= child.duration_ns

    def test_exception_marks_the_span_and_propagates(self):
        tracer = Tracer("t")
        try:
            with tracer.activate():
                with span("failing"):
                    raise ValueError("boom")
        except ValueError:
            pass
        else:  # pragma: no cover
            raise AssertionError("exception swallowed")
        (root,) = tracer.roots
        assert root.attributes["error"] == "ValueError"
        assert root.end_ns >= root.start_ns

    def test_event_records_zero_duration_child(self):
        tracer = Tracer("t")
        with tracer.activate():
            with span("parent"):
                event("step:mark", target="T")
        (root,) = tracer.roots
        (mark,) = root.children
        assert mark.name == "step:mark"
        assert mark.duration_ns == 0
        assert mark.attributes == {"target": "T"}

    def test_annotate_reaches_the_innermost_span(self):
        tracer = Tracer("t")
        with tracer.activate():
            with span("outer"):
                with span("inner"):
                    annotate(extra=7)
        (root,) = tracer.roots
        assert root.children[0].attributes == {"extra": 7}
        assert "extra" not in root.attributes

    def test_threads_get_independent_roots(self):
        # New threads start with a fresh contextvars context, so the
        # caller propagates the activation by running the worker in a
        # copy of the activating context (one copy per thread).
        import contextvars

        tracer = Tracer("t")
        errors = []

        def work(index):
            try:
                with span(f"thread-{index}"):
                    with span("nested"):
                        pass
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        with tracer.activate():
            contexts = [contextvars.copy_context() for _ in range(4)]
            threads = [
                threading.Thread(target=ctx.run, args=(work, i))
                for i, ctx in enumerate(contexts)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert not errors
        assert sorted(s.name for s in tracer.roots) == [
            f"thread-{i}" for i in range(4)
        ]
        assert all(len(s.children) == 1 for s in tracer.roots)


class TestSerialization:
    def test_round_trip_preserves_the_tree(self):
        tracer = Tracer("t")
        with tracer.activate():
            with span("root", key="v"):
                with span("volatile-child", volatile=True):
                    pass
        payloads = tracer.export_spans()
        clone = Tracer("clone")
        clone.adopt(payloads)
        (root,) = clone.roots
        assert root.name == "root"
        assert root.attributes == {"key": "v"}
        assert root.children[0].volatile is True

    def test_adopt_under_explicit_parent(self):
        tracer = Tracer("t")
        with tracer.activate():
            with span("parent") as parent:
                pass
        tracer.adopt(
            [{"name": "grafted", "attributes": {}, "children": []}],
            parent=parent,
        )
        assert [c.name for c in parent.children] == ["grafted"]


class TestMetrics:
    def test_count_and_gauge_reach_the_active_tracer(self):
        tracer = Tracer("t")
        with tracer.activate():
            count("hits")
            count("hits", 2)
            gauge("depth", 4)
        snapshot = tracer.metrics.snapshot()
        assert snapshot["counters"] == {"hits": 3}
        assert snapshot["gauges"] == {"depth": 4}

    def test_merge_adds_counters_and_updates_gauges(self):
        registry = MetricsRegistry()
        registry.count("hits", 1)
        registry.gauge("depth", 1)
        registry.merge({"counters": {"hits": 2, "new": 5}, "gauges": {"depth": 9}})
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"hits": 3, "new": 5}
        assert snapshot["gauges"] == {"depth": 9}

    def test_snapshot_is_sorted_and_detached(self):
        registry = MetricsRegistry()
        registry.count("zebra")
        registry.count("alpha")
        snapshot = registry.snapshot()
        assert list(snapshot["counters"]) == ["alpha", "zebra"]
        snapshot["counters"]["alpha"] = 99
        assert registry.counter("alpha") == 1

    def test_span_from_dict_defaults(self):
        span_obj = Span.from_dict({"name": "bare"}, Tracer("t"))
        assert span_obj.attributes == {}
        assert span_obj.children == []
        assert span_obj.volatile is False
