"""The CLI surface of the tracing layer: ``--trace`` on the pipeline
commands and the ``profile`` subcommand."""

import io
import json

import pytest

from repro.cli import main
from repro.cris import figure6_schema
from repro.dsl import to_dsl
from repro.observability import validate_span_tree


@pytest.fixture
def schema_file(tmp_path):
    path = tmp_path / "figure6.ridl"
    path.write_text(to_dsl(figure6_schema()))
    return path


def run(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestTraceFlag:
    def test_map_trace_writes_valid_deterministic_tree(
        self, schema_file, tmp_path
    ):
        trace = tmp_path / "trace.json"
        code, output = run(["map", str(schema_file), "--trace", str(trace)])
        assert code == 0
        assert "CREATE TABLE" in output  # tracing never changes output
        payload = json.loads(trace.read_text())
        validate_span_tree(payload)
        assert payload["trace"]["deterministic"] is True
        names = [s["name"] for s in payload["spans"]]
        assert "mapper.map_schema" in names
        assert "sql.emit" in names

    def test_map_trace_is_reproducible(self, schema_file, tmp_path):
        first, second = tmp_path / "a.json", tmp_path / "b.json"
        run(["map", str(schema_file), "--trace", str(first)])
        run(["map", str(schema_file), "--trace", str(second)])
        assert first.read_bytes() == second.read_bytes()

    def test_chrome_format_emits_trace_events(self, schema_file, tmp_path):
        trace = tmp_path / "trace.json"
        code, _ = run(
            [
                "lint",
                str(schema_file),
                "--trace",
                str(trace),
                "--trace-format",
                "chrome",
            ]
        )
        assert code == 0
        payload = json.loads(trace.read_text())
        assert any(
            e["name"] == "lint.schema" for e in payload["traceEvents"]
        )
        assert payload["otherData"]["metrics"]["counters"]

    def test_advise_trace_matches_across_worker_counts(
        self, schema_file, tmp_path
    ):
        serial, pooled = tmp_path / "w1.json", tmp_path / "w2.json"
        args = ["advise", str(schema_file), "--max-candidates", "6"]
        code, _ = run(args + ["--workers", "1", "--trace", str(serial)])
        assert code == 0
        code, _ = run(args + ["--workers", "2", "--trace", str(pooled)])
        assert code == 0
        assert serial.read_bytes() == pooled.read_bytes()

    def test_trace_written_even_when_the_run_fails(self, tmp_path):
        bad = tmp_path / "bad.ridl"
        bad.write_text(
            "schema Bad\nnolot Ghost\nlot K : char(3)\n"
            "attribute Ghost has K\n"
        )
        trace = tmp_path / "trace.json"
        code, output = run(["map", str(bad), "--trace", str(trace)])
        assert code != 0
        payload = json.loads(trace.read_text())
        validate_span_tree(payload)

    def test_report_supports_trace(self, schema_file, tmp_path):
        trace = tmp_path / "trace.json"
        code, _ = run(
            [
                "report",
                str(schema_file),
                "--out",
                str(tmp_path / "build"),
                "--trace",
                str(trace),
            ]
        )
        assert code == 0
        validate_span_tree(json.loads(trace.read_text()))


class TestProfileCommand:
    def test_profile_map_prints_tree_topk_and_metrics(self, schema_file):
        code, output = run(["profile", str(schema_file), "--top-k", "5"])
        assert code == 0
        assert "trace 'repro profile'" in output
        assert "mapper.map_schema" in output
        assert "spans by self time" in output
        assert "rules.fired" in output

    def test_profile_lint_pipeline(self, schema_file):
        code, output = run(
            ["profile", str(schema_file), "--pipeline", "lint"]
        )
        assert code == 0
        assert "lint.schema" in output
        assert "lint.diagnostics" in output or "lint:" in output

    def test_profile_advise_pipeline_serial(self, schema_file):
        code, output = run(
            [
                "profile",
                str(schema_file),
                "--pipeline",
                "advise",
                "--workers",
                "1",
            ]
        )
        assert code == 0
        assert "advisor.advise" in output
        assert "advisor.groups" in output

    def test_profile_with_trace_writes_both(self, schema_file, tmp_path):
        trace = tmp_path / "trace.json"
        code, output = run(
            ["profile", str(schema_file), "--trace", str(trace)]
        )
        assert code == 0
        assert "spans by self time" in output
        validate_span_tree(json.loads(trace.read_text()))

    def test_profile_usage_errors_exit_two(self, schema_file):
        code, output = run(
            ["profile", str(schema_file), "--pipeline", "nope"]
        )
        assert code == 2
        assert "error:" in output
