"""Property-based trace invariants over real pipeline runs.

Three structural properties the tracing layer must hold on *any*
schema the generator can produce:

* **Well-nested, non-overlapping spans** — every child's interval is
  contained in its parent's, and same-thread siblings never overlap
  (monotonic clock, LIFO nesting).
* **One ``step:`` span per applied transformation** — the trace's
  point events agree with the mapping result's audit trail
  (``MappingState.record`` is the single choke point for both).
* **Worker-count determinism** — the deterministic JSON export of an
  ``advise`` run is byte-identical for 1 and 2 workers.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.mapper import MappingOptions, SublinkPolicy, advise, discover_space, map_schema
from repro.observability import Span, Tracer, to_json
from repro.workloads import SchemaShape, generate_schema

SHAPES = st.builds(
    SchemaShape,
    entity_types=st.integers(min_value=3, max_value=10),
    rich_constraints=st.booleans(),
    subtype_own_identifier_ratio=st.just(0.5),
)


def traced_map(schema, options=MappingOptions()) -> tuple[Tracer, object]:
    tracer = Tracer("test")
    with tracer.activate():
        result = map_schema(schema, options)
    return tracer, result


def walk(span: Span):
    yield span
    for child in span.children:
        yield from walk(child)


def assert_well_nested(span: Span) -> None:
    previous_end_by_thread: dict[int, int] = {}
    for child in span.children:
        assert span.start_ns <= child.start_ns, (span.name, child.name)
        assert child.end_ns <= span.end_ns or child.pid != span.pid, (
            span.name,
            child.name,
        )
        if child.pid == span.pid:
            previous = previous_end_by_thread.get(child.thread_id)
            if previous is not None:
                assert previous <= child.start_ns, (
                    f"siblings overlap under {span.name}: {child.name}"
                )
            previous_end_by_thread[child.thread_id] = child.end_ns
        assert_well_nested(child)


class TestSpanNesting:
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(shape=SHAPES, seed=st.integers(min_value=0, max_value=100))
    def test_spans_are_well_nested_and_non_overlapping(self, shape, seed):
        schema = generate_schema(shape, seed=seed)
        tracer, _ = traced_map(schema)
        assert tracer.roots
        for root in tracer.roots:
            assert root.end_ns >= root.start_ns
            assert_well_nested(root)

    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(seed=st.integers(min_value=0, max_value=100))
    def test_every_span_has_a_name_and_clean_attributes(self, seed):
        schema = generate_schema(SchemaShape(entity_types=6), seed=seed)
        tracer, _ = traced_map(schema)
        for root in tracer.roots:
            for span in walk(root):
                assert span.name
                for key, value in span.attributes.items():
                    assert isinstance(key, str)
                    assert isinstance(value, (str, int, float, bool)), (
                        span.name,
                        key,
                        type(value),
                    )


class TestStepSpans:
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        shape=SHAPES,
        seed=st.integers(min_value=0, max_value=100),
        sublinks=st.sampled_from(list(SublinkPolicy)),
    )
    def test_exactly_one_step_span_per_applied_step(
        self, shape, seed, sublinks
    ):
        schema = generate_schema(shape, seed=seed)
        tracer, result = traced_map(
            schema, MappingOptions(sublink_policy=sublinks)
        )
        step_spans = [
            span
            for root in tracer.roots
            for span in walk(root)
            if span.name.startswith("step:")
        ]
        # In a healthy (non-faulted) run no firing is rolled back, so
        # the point events agree exactly with the audit trail.
        assert len(step_spans) == len(result.steps)
        assert [s.name for s in step_spans] == [
            f"step:{step.transformation}" for step in result.steps
        ]
        assert tracer.metrics.counter("steps.recorded") == len(result.steps)


class TestWorkerDeterminism:
    @settings(
        max_examples=3,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(seed=st.integers(min_value=0, max_value=20))
    def test_advise_trace_is_byte_identical_across_worker_counts(
        self, seed
    ):
        schema = generate_schema(
            SchemaShape(entity_types=4, many_to_many_per_entity=0.0),
            seed=seed,
        )
        exports = []
        for workers in (1, 2):
            tracer = Tracer("advise")
            with tracer.activate():
                advise(schema, discover_space(schema), workers=workers)
            exports.append(to_json(tracer, deterministic=True))
        assert exports[0] == exports[1]
