"""The trace exporters: deterministic JSON span tree, the native
schema validator, Chrome trace events, and the text profile."""

import json

import pytest

from repro.observability import (
    Tracer,
    aggregate_spans,
    count,
    render_profile,
    span,
    span_tree,
    to_chrome_trace,
    to_json,
    validate_span_tree,
)


def sample_tracer() -> Tracer:
    tracer = Tracer("sample")
    with tracer.activate():
        with span("root", schema="s"):
            with span("cache-fill", volatile=True):
                pass
            with span("work", rule="r1"):
                pass
        count("hits", 2)
    return tracer


class TestSpanTree:
    def test_deterministic_tree_prunes_volatile_and_timings(self):
        tree = span_tree(sample_tracer(), deterministic=True)
        (root,) = tree["spans"]
        assert [c["name"] for c in root["children"]] == ["work"]
        assert "start_ns" not in root
        assert "metrics" not in tree
        assert tree["trace"]["deterministic"] is True
        validate_span_tree(tree)

    def test_full_tree_keeps_everything(self):
        tree = span_tree(sample_tracer(), deterministic=False)
        (root,) = tree["spans"]
        names = [c["name"] for c in root["children"]]
        assert names == ["cache-fill", "work"]
        assert root["children"][0]["volatile"] is True
        assert root["end_ns"] >= root["start_ns"]
        assert tree["metrics"]["counters"] == {"hits": 2}
        validate_span_tree(tree)

    def test_to_json_is_canonical(self):
        text = to_json(sample_tracer())
        assert text.endswith("\n")
        payload = json.loads(text)
        validate_span_tree(payload)
        # Sorted keys make the bytes canonical.
        assert text == json.dumps(payload, indent=2, sort_keys=True) + "\n"


class TestValidator:
    def test_rejects_non_object(self):
        with pytest.raises(ValueError, match="top level"):
            validate_span_tree([])

    def test_rejects_missing_trace_header(self):
        with pytest.raises(ValueError, match=r"\$\.trace"):
            validate_span_tree({"spans": []})

    def test_rejects_span_without_name(self):
        tree = span_tree(sample_tracer())
        del tree["spans"][0]["name"]
        with pytest.raises(ValueError, match="missing required key"):
            validate_span_tree(tree)

    def test_rejects_timings_in_deterministic_export(self):
        tree = span_tree(sample_tracer())
        tree["spans"][0]["start_ns"] = 1
        with pytest.raises(ValueError, match="no 'start_ns'"):
            validate_span_tree(tree)

    def test_rejects_metrics_in_deterministic_export(self):
        tree = span_tree(sample_tracer())
        tree["metrics"] = {"counters": {}}
        with pytest.raises(ValueError, match="no metrics"):
            validate_span_tree(tree)

    def test_rejects_volatile_in_deterministic_export(self):
        tree = span_tree(sample_tracer())
        tree["spans"][0]["volatile"] = True
        with pytest.raises(ValueError, match="volatile"):
            validate_span_tree(tree)

    def test_rejects_wrong_attribute_container(self):
        tree = span_tree(sample_tracer())
        tree["spans"][0]["attributes"] = ["not", "a", "dict"]
        with pytest.raises(ValueError, match="attributes"):
            validate_span_tree(tree)

    def test_rejects_bad_nested_child(self):
        tree = span_tree(sample_tracer())
        tree["spans"][0]["children"].append("not-a-span")
        with pytest.raises(ValueError, match="children"):
            validate_span_tree(tree)


class TestChromeTrace:
    def test_events_cover_every_span(self):
        text = to_chrome_trace(sample_tracer())
        payload = json.loads(text)
        names = sorted(e["name"] for e in payload["traceEvents"])
        assert names == ["cache-fill", "root", "work"]
        assert all(e["ph"] == "X" for e in payload["traceEvents"])

    def test_timestamps_are_normalized_per_process(self):
        payload = json.loads(to_chrome_trace(sample_tracer()))
        starts = [e["ts"] for e in payload["traceEvents"]]
        assert min(starts) == 0.0
        assert all(ts >= 0 for ts in starts)

    def test_category_is_the_name_prefix(self):
        tracer = Tracer("t")
        with tracer.activate():
            with span("mapper.map_schema"):
                pass
            with span("rule:canonicalize"):
                pass
        payload = json.loads(to_chrome_trace(tracer))
        categories = {e["name"]: e["cat"] for e in payload["traceEvents"]}
        assert categories["mapper.map_schema"] == "mapper"
        assert categories["rule:canonicalize"] == "rule"

    def test_metrics_ride_in_other_data(self):
        payload = json.loads(to_chrome_trace(sample_tracer()))
        assert payload["otherData"]["metrics"]["counters"] == {"hits": 2}


class TestProfile:
    def test_aggregates_group_by_name(self):
        tracer = Tracer("t")
        with tracer.activate():
            for _ in range(3):
                with span("repeated"):
                    pass
        (bucket,) = aggregate_spans(tracer)
        assert bucket["name"] == "repeated"
        assert bucket["calls"] == 3
        assert bucket["self_ms"] == pytest.approx(bucket["total_ms"])

    def test_self_time_excludes_children(self):
        tracer = Tracer("t")
        with tracer.activate():
            with span("parent"):
                with span("child"):
                    for _ in range(1000):
                        pass
        by_name = {b["name"]: b for b in aggregate_spans(tracer)}
        assert by_name["parent"]["total_ms"] >= by_name["child"]["total_ms"]
        assert by_name["parent"]["self_ms"] <= by_name["parent"]["total_ms"]

    def test_render_profile_lists_tree_topk_and_metrics(self):
        text = render_profile(sample_tracer(), top_k=2)
        assert "trace 'sample'" in text
        assert "root" in text and "work" in text
        assert "top 2 spans by self time" in text
        assert "hits = 2" in text

    def test_render_profile_respects_depth(self):
        tracer = Tracer("t")
        with tracer.activate():
            with span("d0"):
                with span("d1"):
                    with span("d2"):
                        pass
        text = render_profile(tracer, depth=1)
        tree_section = text.split("top ", 1)[0]
        assert "d1" in tree_section
        assert "d2" not in tree_section
