"""Tests for the constraint implication & satisfiability engine."""

import pytest

from repro.analyzer.implication import (
    VerdictKind,
    check_implications,
    require_satisfiable,
)
from repro.analyzer.proofs import Proof, ProofStep
from repro.brm import SchemaBuilder, char
from repro.errors import PopulationError


def three_parallel_facts():
    b = SchemaBuilder("T")
    b.nolot("P").lot("K", char(3)).lot("L", char(3)).lot("M", char(3))
    b.fact("f", ("P", "x"), ("K", "y"))
    b.fact("g", ("P", "x"), ("L", "y"))
    b.fact("h", ("P", "x"), ("M", "y"))
    return b


class TestImpliedSubset:
    def test_transitive_subset_is_implied_with_both_premises(self):
        b = three_parallel_facts()
        b.subset(("h", "x"), ("g", "x"), name="S1")
        b.subset(("g", "x"), ("f", "x"), name="S2")
        b.subset(("h", "x"), ("f", "x"), name="S3")
        result = check_implications(b.build())
        verdict = result.implied_for("S3")
        assert verdict is not None
        assert verdict.category == "subset"
        assert verdict.proof.premises == ("S1", "S2")
        # The chain members themselves are not implied.
        assert result.implied_for("S1") is None
        assert result.implied_for("S2") is None

    def test_subset_does_not_imply_itself(self):
        # The excluded-edge search must not use S1's own edge.
        b = three_parallel_facts()
        b.subset(("h", "x"), ("g", "x"), name="S1")
        assert check_implications(b.build()).implied == ()

    def test_structural_subset_via_sublink_has_no_premises(self):
        b = SchemaBuilder("T")
        b.nolot("P").nolot("Q")
        b.subtype("Q", "P")
        b.lot("K", char(3))
        b.fact("f", ("P", "x"), ("K", "y"))
        b.fact("g", ("Q", "x"), ("K", "y"))
        # g.x <= Q <= P is structural; a declared Q-in-P style subset
        # over the sublink would be implied with zero premises.  Here
        # we check the graph path exists by declaring an equivalent
        # subset over roles and expecting no implication (role g.x is
        # not included in role f.x without more structure).
        b.subset(("g", "x"), ("f", "x"), name="S1")
        assert check_implications(b.build()).implied_for("S1") is None


class TestImpliedEquality:
    def test_mutual_subsets_imply_equality(self):
        b = three_parallel_facts()
        b.subset(("g", "x"), ("f", "x"), name="S1")
        b.subset(("f", "x"), ("g", "x"), name="S2")
        b.equality(("f", "x"), ("g", "x"), name="E1")
        result = check_implications(b.build())
        verdict = result.implied_for("E1")
        assert verdict is not None
        assert verdict.category == "equality"
        assert set(verdict.proof.premises) == {"S1", "S2"}
        # ... and the subsets are implied right back by the equality:
        # mutual implication is reported in both directions.
        assert result.implied_for("S1").proof.premises == ("E1",)
        assert result.implied_for("S2").proof.premises == ("E1",)

    def test_one_direction_only_is_not_equality(self):
        b = three_parallel_facts()
        b.subset(("g", "x"), ("f", "x"), name="S1")
        b.equality(("f", "x"), ("g", "x"), name="E1")
        assert check_implications(b.build()).implied_for("E1") is None


class TestImpliedUniquenessAndFrequency:
    def test_frequency_max_one_implies_uniqueness(self):
        b = three_parallel_facts()
        b.unique(("f", "x"), name="U1")
        b.frequency(("f", "x"), 1, 1, name="F1")
        result = check_implications(b.build())
        assert result.implied_for("U1").proof.premises == ("F1",)
        # ... and uniqueness implies the 1..1 bound right back.
        assert result.implied_for("F1").proof.premises == ("U1",)

    def test_vacuous_frequency_has_structural_proof(self):
        b = three_parallel_facts()
        b.frequency(("f", "x"), 1, None, name="F1")
        verdict = check_implications(b.build()).implied_for("F1")
        assert verdict is not None
        assert verdict.proof.premises == ()

    def test_tighter_interval_subsumes_wider(self):
        b = three_parallel_facts()
        b.frequency(("f", "x"), 2, 3, name="FTIGHT")
        b.frequency(("f", "x"), 2, 5, name="FWIDE")
        result = check_implications(b.build())
        assert result.implied_for("FWIDE").proof.premises == ("FTIGHT",)
        assert result.implied_for("FTIGHT") is None

    def test_binding_frequency_is_not_implied(self):
        b = three_parallel_facts()
        b.frequency(("f", "x"), 2, 4, name="F1")
        assert check_implications(b.build()).implied == ()


class TestImpliedValue:
    def test_superset_domain_is_implied(self):
        b = three_parallel_facts()
        b.values("K", ("a", "b", "c"), name="VWIDE")
        b.values("K", ("a", "b"), name="VTIGHT")
        result = check_implications(b.build())
        assert result.implied_for("VWIDE").proof.premises == ("VTIGHT",)
        assert result.implied_for("VTIGHT") is None


class TestContradictions:
    def test_disjoint_frequency_intervals(self):
        b = three_parallel_facts()
        b.frequency(("f", "x"), 2, 3, name="F1")
        b.frequency(("f", "x"), 5, 9, name="F2")
        result = check_implications(b.build())
        assert not result.is_satisfiable
        (conflict,) = [
            v for v in result.contradictions
            if v.category == "frequency-conflict"
        ]
        assert conflict.subject == "f.x"
        assert set(conflict.proof.premises) == {"F1", "F2"}
        # Emptiness propagates across the fact type.
        empty = {v.subject for v in result.forced_empty}
        assert {"f.x", "f.y"} <= empty

    def test_uniqueness_against_minimum_above_one(self):
        b = three_parallel_facts()
        b.unique(("f", "x"), name="U1")
        b.frequency(("f", "x"), 2, 4, name="F1")
        result = check_implications(b.build())
        assert not result.is_satisfiable
        (conflict,) = result.contradictions
        assert set(conflict.proof.premises) == {"U1", "F1"}

    def test_disjoint_value_domains_empty_the_type(self):
        b = three_parallel_facts()
        b.values("K", ("a", "b"), name="V1")
        b.values("K", ("c", "d"), name="V2")
        result = check_implications(b.build())
        assert not result.is_satisfiable
        kinds = {(v.category, v.subject) for v in result.contradictions}
        assert ("value-conflict", "K") in kinds
        assert ("empty-type", "K") in kinds

    def test_never_plays_bound_is_not_a_contradiction(self):
        # (0, 0) legally retires the role: forced empty, satisfiable.
        b = three_parallel_facts()
        b.frequency(("f", "x"), 0, 0, name="F0")
        result = check_implications(b.build())
        assert result.is_satisfiable
        empty = {v.subject for v in result.forced_empty}
        assert {"f.x", "f.y"} <= empty

    def test_exclusion_and_total_force_type_empty(self):
        b = SchemaBuilder("T")
        b.nolot("P").lot("K", char(3)).lot("L", char(3))
        b.fact("f", ("P", "x"), ("K", "y"), total="first")
        b.fact("g", ("P", "x"), ("L", "y"), total="first")
        b.exclusion(("f", "x"), ("g", "x"), name="X1")
        result = check_implications(b.build())
        assert not result.is_satisfiable
        (contradiction,) = [
            v for v in result.contradictions if v.category == "empty-type"
        ]
        assert contradiction.subject == "P"
        assert "X1" in contradiction.proof.premises

    def test_subset_into_exclusion_empties_subset_role_with_proof(self):
        b = three_parallel_facts()
        b.subset(("g", "x"), ("f", "x"), name="S1")
        b.exclusion(("f", "x"), ("g", "x"), name="X1")
        result = check_implications(b.build())
        assert result.is_satisfiable
        verdict = next(
            v for v in result.forced_empty if v.subject == "g.x"
        )
        assert set(verdict.proof.premises) == {"S1", "X1"}


class TestProofs:
    def test_premises_dedupe_and_skip_structural_steps(self):
        proof = Proof(
            "c",
            (
                ProofStep("s1", "A"),
                ProofStep("s2"),
                ProofStep("s3", "B"),
                ProofStep("s4", "A"),
            ),
        )
        assert proof.premises == ("A", "B")

    def test_render_numbers_steps(self):
        proof = Proof("top", (ProofStep("fact", "C1"),))
        rendered = proof.render()
        assert rendered.splitlines()[0] == "top"
        assert "1. fact [by constraint 'C1']" in rendered

    def test_render_inline_without_steps_is_conclusion(self):
        assert Proof("top").render_inline() == "top"


class TestEngineContract:
    def test_memoized_on_schema_version(self):
        b = three_parallel_facts()
        schema = b.build()
        assert check_implications(schema) is check_implications(schema)

    def test_verdicts_are_deterministically_ordered(self):
        b = three_parallel_facts()
        b.subset(("h", "x"), ("g", "x"), name="S1")
        b.subset(("g", "x"), ("f", "x"), name="S2")
        b.subset(("h", "x"), ("f", "x"), name="S3")
        b.exclusion(("f", "y"), ("g", "y"), name="X1")
        first = check_implications(b.build())
        second = check_implications(b.build())
        assert first.verdicts == second.verdicts

    def test_require_satisfiable_passes_clean_schema(self):
        result = require_satisfiable(three_parallel_facts().build())
        assert result.is_satisfiable

    def test_require_satisfiable_raises_with_proof(self):
        b = three_parallel_facts()
        b.frequency(("f", "x"), 2, 3, name="F1")
        b.frequency(("f", "x"), 5, 9, name="F2")
        with pytest.raises(PopulationError) as excinfo:
            require_satisfiable(b.build())
        message = str(excinfo.value)
        assert "F1" in message and "F2" in message
        assert "no common play count" in message
