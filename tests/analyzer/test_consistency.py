"""Tests for RIDL-A function 3 (set-algebraic constraint consistency)."""

from repro.analyzer import check_consistency
from repro.brm import SchemaBuilder, char


class TestConsistentSchemas:
    def test_plain_schema_is_consistent(self):
        b = SchemaBuilder()
        b.nolot("Paper").lot("K", char(3))
        b.identifier("Paper", "K")
        result = check_consistency(b.build())
        assert result.is_consistent
        assert result.forced_empty == {}

    def test_disjoint_subtypes_are_consistent(self):
        b = SchemaBuilder()
        b.nolot("Paper").nolot("A").nolot("B")
        b.subtype("A", "Paper").subtype("B", "Paper")
        b.exclusion("sublink:A_IS_Paper", "sublink:B_IS_Paper")
        assert check_consistency(b.build()).is_consistent

    def test_subset_chain_is_consistent(self):
        b = SchemaBuilder()
        b.nolot("P").lot("K", char(3)).lot("L", char(3))
        b.fact("f", ("P", "x"), ("K", "y"))
        b.fact("g", ("P", "x"), ("L", "y"))
        b.subset(("g", "x"), ("f", "x"))
        assert check_consistency(b.build()).is_consistent


class TestContradictions:
    def test_equality_plus_exclusion_forces_empty(self):
        b = SchemaBuilder()
        b.nolot("P").lot("K", char(3)).lot("L", char(3))
        b.fact("f", ("P", "x"), ("K", "y"))
        b.fact("g", ("P", "x"), ("L", "y"))
        b.equality(("f", "x"), ("g", "x"))
        b.exclusion(("f", "x"), ("g", "x"))
        result = check_consistency(b.build())
        # Both roles forced empty (warnings), but P itself survives.
        roles = {n for n in result.forced_empty if n[0] == "role"}
        assert len(roles) >= 2
        assert result.is_consistent

    def test_subset_plus_exclusion_empties_subset(self):
        b = SchemaBuilder()
        b.nolot("P").lot("K", char(3)).lot("L", char(3))
        b.fact("f", ("P", "x"), ("K", "y"))
        b.fact("g", ("P", "x"), ("L", "y"))
        b.subset(("g", "x"), ("f", "x"))
        b.exclusion(("f", "x"), ("g", "x"))
        result = check_consistency(b.build())
        assert ("role", "g", "x") in result.forced_empty
        assert ("role", "f", "x") not in result.forced_empty

    def test_total_role_on_forced_empty_role_is_inconsistent(self):
        b = SchemaBuilder()
        b.nolot("P").lot("K", char(3)).lot("L", char(3))
        b.fact("f", ("P", "x"), ("K", "y"))
        b.fact("g", ("P", "x"), ("L", "y"))
        b.total(("g", "x"))
        b.subset(("g", "x"), ("f", "x"))
        b.exclusion(("f", "x"), ("g", "x"))
        result = check_consistency(b.build())
        # g.x is empty, and P must play g.x: P is unpopulatable.
        assert not result.is_consistent
        assert ("type", "P") in result.forced_empty

    def test_two_total_excluded_roles_are_inconsistent(self):
        # Every P plays f.x and every P plays g.x, but f.x and g.x are
        # mutually exclusive: P must be empty.
        b = SchemaBuilder()
        b.nolot("P").lot("K", char(3)).lot("L", char(3))
        b.fact("f", ("P", "x"), ("K", "y"), total="first")
        b.fact("g", ("P", "x"), ("L", "y"), total="first")
        b.exclusion(("f", "x"), ("g", "x"))
        result = check_consistency(b.build())
        assert not result.is_consistent

    def test_subtype_of_excluded_subtypes_is_inconsistent(self):
        b = SchemaBuilder()
        b.nolot("Paper").nolot("A").nolot("B").nolot("AB")
        b.subtype("A", "Paper").subtype("B", "Paper")
        b.subtype("AB", "A", name="AB_IS_A").subtype("AB", "B", name="AB_IS_B")
        b.exclusion("sublink:A_IS_Paper", "sublink:B_IS_Paper")
        result = check_consistency(b.build())
        assert ("type", "AB") in result.forced_empty
        assert not result.is_consistent
        # A and B themselves are not forced empty.
        assert ("type", "A") not in result.forced_empty

    def test_emptiness_propagates_through_facts(self):
        # AB empty -> AB's role empty -> co-role empty.
        b = SchemaBuilder()
        b.nolot("Paper").nolot("A").nolot("B").nolot("AB").lot("K", char(3))
        b.subtype("A", "Paper").subtype("B", "Paper")
        b.subtype("AB", "A", name="AB_IS_A").subtype("AB", "B", name="AB_IS_B")
        b.exclusion("sublink:A_IS_Paper", "sublink:B_IS_Paper")
        b.fact("h", ("AB", "x"), ("K", "y"))
        result = check_consistency(b.build())
        assert ("role", "h", "x") in result.forced_empty
        assert ("role", "h", "y") in result.forced_empty

    def test_total_union_hyper_rule(self):
        # P is totally covered by two roles that are both forced empty.
        b = SchemaBuilder()
        b.nolot("P").nolot("Q").lot("K", char(3)).lot("L", char(3))
        b.fact("f", ("P", "x"), ("K", "y"))
        b.fact("g", ("P", "x2"), ("L", "y"))
        b.total_union("P", ("f", "x"), ("g", "x2"))
        b.equality(("f", "x"), ("g", "x2"))
        b.exclusion(("f", "x"), ("g", "x2"))
        result = check_consistency(b.build())
        assert ("type", "P") in result.forced_empty
        assert not result.is_consistent


class TestDiagnostics:
    def test_reasons_are_recorded(self):
        b = SchemaBuilder()
        b.nolot("P").lot("K", char(3)).lot("L", char(3))
        b.fact("f", ("P", "x"), ("K", "y"))
        b.fact("g", ("P", "x"), ("L", "y"))
        b.equality(("f", "x"), ("g", "x"), name="EQ")
        b.exclusion(("f", "x"), ("g", "x"), name="EXC")
        result = check_consistency(b.build())
        reasons = " ".join(result.forced_empty.values())
        assert "EXC" in reasons

    def test_diagnostic_severities(self):
        from repro.analyzer import Severity

        b = SchemaBuilder()
        b.nolot("P").lot("K", char(3)).lot("L", char(3))
        b.fact("f", ("P", "x"), ("K", "y"), total="first")
        b.fact("g", ("P", "x"), ("L", "y"), total="first")
        b.exclusion(("f", "x"), ("g", "x"))
        result = check_consistency(b.build())
        by_code = {d.code: d for d in result.diagnostics}
        assert by_code["FORCED_EMPTY_TYPE"].severity is Severity.ERROR
        assert by_code["FORCED_EMPTY_ROLE"].severity is Severity.WARNING
