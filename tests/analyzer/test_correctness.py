"""Tests for RIDL-A function 1 (correctness)."""

from repro.analyzer import Severity, check_correctness
from repro.brm import SchemaBuilder, char, numeric


def codes(diagnostics):
    return {d.code for d in diagnostics}


class TestLexicalFacts:
    def test_lot_to_lot_fact_is_error(self):
        b = SchemaBuilder()
        b.lot("A", char(3)).lot("B", char(3))
        b.fact("f", ("A", "x"), ("B", "y"))
        found = check_correctness(b.build())
        assert codes(found) == {"LEXICAL_FACT"}
        assert found[0].severity is Severity.ERROR

    def test_lot_nolot_to_lot_fact_is_fine(self):
        b = SchemaBuilder()
        b.lot_nolot("Person", char(30)).lot("Name", char(30))
        b.fact("f", ("Person", "x"), ("Name", "y"))
        assert "LEXICAL_FACT" not in codes(check_correctness(b.build()))


class TestItemCompatibility:
    def test_exclusion_over_unrelated_types_is_error(self):
        b = SchemaBuilder()
        b.nolot("Paper").nolot("Person").lot("K", char(3))
        b.fact("f", ("Paper", "x"), ("K", "y"))
        b.fact("g", ("Person", "x"), ("K", "y"))
        b.exclusion(("f", "x"), ("g", "x"))
        assert "INCOMPATIBLE_ITEMS" in codes(check_correctness(b.build()))

    def test_exclusion_within_family_is_fine(self):
        b = SchemaBuilder()
        b.nolot("Paper").nolot("Invited").nolot("Rejected")
        b.subtype("Invited", "Paper").subtype("Rejected", "Paper")
        b.exclusion("sublink:Invited_IS_Paper", "sublink:Rejected_IS_Paper")
        assert "INCOMPATIBLE_ITEMS" not in codes(check_correctness(b.build()))

    def test_subset_between_subtype_roles_is_fine(self):
        b = SchemaBuilder()
        b.nolot("Paper").nolot("PP").lot("K", char(3))
        b.subtype("PP", "Paper")
        b.fact("f", ("Paper", "x"), ("K", "y"))
        b.fact("g", ("PP", "x"), ("K", "y"))
        b.subset(("g", "x"), ("f", "x"))
        assert "INCOMPATIBLE_ITEMS" not in codes(check_correctness(b.build()))


class TestExternalUniqueness:
    def test_divergent_co_players_is_error(self):
        b = SchemaBuilder()
        b.nolot("A").nolot("B").lot("K", char(3)).lot("L", char(3))
        b.fact("f", ("A", "x"), ("K", "y"))
        b.fact("g", ("B", "x"), ("L", "y"))
        b.unique(("f", "y"), ("g", "y"))
        assert "EXTERNAL_UNIQUENESS_SHAPE" in codes(check_correctness(b.build()))

    def test_common_co_player_is_fine(self):
        b = SchemaBuilder()
        b.nolot("A").lot("K", char(3)).lot("L", char(3))
        b.fact("f", ("A", "x"), ("K", "y"))
        b.fact("g", ("A", "x"), ("L", "y"))
        b.unique(("f", "y"), ("g", "y"))
        assert "EXTERNAL_UNIQUENESS_SHAPE" not in codes(
            check_correctness(b.build())
        )


class TestFrequencyConflicts:
    def test_min_frequency_vs_uniqueness(self):
        b = SchemaBuilder()
        b.nolot("A").lot("K", char(3))
        b.fact("f", ("A", "x"), ("K", "y"), unique="first")
        b.frequency(("f", "x"), 2)
        assert "FREQUENCY_CONFLICT" in codes(check_correctness(b.build()))

    def test_max_frequency_without_uniqueness_is_fine(self):
        b = SchemaBuilder()
        b.nolot("A").lot("K", char(3))
        b.fact("f", ("A", "x"), ("K", "y"))
        b.frequency(("f", "x"), 1, 3)
        assert "FREQUENCY_CONFLICT" not in codes(check_correctness(b.build()))


class TestDuplicates:
    def test_duplicate_constraints_warned(self):
        b = SchemaBuilder()
        b.nolot("A").lot("K", char(3))
        b.fact("f", ("A", "x"), ("K", "y"))
        b.unique(("f", "x")).unique(("f", "x"))
        found = [d for d in check_correctness(b.build())
                 if d.code == "DUPLICATE_CONSTRAINT"]
        assert len(found) == 1
        assert found[0].severity is Severity.WARNING

    def test_clean_schema_has_no_findings(self):
        b = SchemaBuilder()
        b.nolot("Paper").lot("Paper_Id", char(6)).lot_nolot("Session", numeric(3))
        b.identifier("Paper", "Paper_Id")
        b.attribute("Paper", "Session", total=True)
        assert check_correctness(b.build()) == []
