"""Additional consistency-solver cases: sublink items, diagnostics."""

from repro.analyzer import Severity, check_consistency
from repro.brm import SchemaBuilder, char


class TestSublinkItems:
    def test_subset_between_sublinks(self):
        # B ⊆ C as populations, B and C mutually exclusive: B empty.
        b = SchemaBuilder("s")
        b.nolot("A").nolot("B").nolot("C")
        b.subtype("B", "A").subtype("C", "A")
        b.subset("sublink:B_IS_A", "sublink:C_IS_A")
        b.exclusion("sublink:B_IS_A", "sublink:C_IS_A")
        result = check_consistency(b.build())
        assert ("type", "B") in result.forced_empty
        assert ("type", "C") not in result.forced_empty
        assert not result.is_consistent

    def test_forced_empty_sublink_diagnostic(self):
        b = SchemaBuilder("s")
        b.nolot("A").nolot("B").nolot("C")
        b.subtype("B", "A").subtype("C", "A")
        b.subset("sublink:B_IS_A", "sublink:C_IS_A")
        b.exclusion("sublink:B_IS_A", "sublink:C_IS_A")
        result = check_consistency(b.build())
        codes = {d.code for d in result.diagnostics}
        assert "FORCED_EMPTY_SUBLINK" in codes
        assert "FORCED_EMPTY_TYPE" in codes

    def test_equality_between_sublinks(self):
        # B = C and B excluded from C: both empty.
        b = SchemaBuilder("s")
        b.nolot("A").nolot("B").nolot("C")
        b.subtype("B", "A").subtype("C", "A")
        b.equality("sublink:B_IS_A", "sublink:C_IS_A")
        b.exclusion("sublink:B_IS_A", "sublink:C_IS_A")
        result = check_consistency(b.build())
        assert ("type", "B") in result.forced_empty
        assert ("type", "C") in result.forced_empty

    def test_supertype_untouched_by_empty_subtypes(self):
        b = SchemaBuilder("s")
        b.nolot("A").nolot("B").nolot("C")
        b.subtype("B", "A").subtype("C", "A")
        b.equality("sublink:B_IS_A", "sublink:C_IS_A")
        b.exclusion("sublink:B_IS_A", "sublink:C_IS_A")
        result = check_consistency(b.build())
        assert ("type", "A") not in result.forced_empty
        assert result.is_consistent is False  # B and C are types too


class TestMixedItems:
    def test_role_equal_to_empty_sublink_is_empty(self):
        b = SchemaBuilder("s")
        b.nolot("A").nolot("B").nolot("C").lot("K", char(3))
        b.subtype("B", "A").subtype("C", "A")
        b.subset("sublink:B_IS_A", "sublink:C_IS_A")
        b.exclusion("sublink:B_IS_A", "sublink:C_IS_A")
        b.fact("f", ("A", "x"), ("K", "y"))
        b.equality(("f", "x"), "sublink:B_IS_A")
        result = check_consistency(b.build())
        assert ("role", "f", "x") in result.forced_empty
        assert ("role", "f", "y") in result.forced_empty

    def test_total_role_through_empty_role_chain(self):
        # K-side totality forces nothing; but A total on a role that
        # equals an empty one empties A.
        b = SchemaBuilder("s")
        b.nolot("A").nolot("B").nolot("C").lot("K", char(3))
        b.subtype("B", "A").subtype("C", "A")
        b.subset("sublink:B_IS_A", "sublink:C_IS_A")
        b.exclusion("sublink:B_IS_A", "sublink:C_IS_A")
        b.fact("f", ("A", "x"), ("K", "y"), total="first")
        b.equality(("f", "x"), "sublink:B_IS_A")
        result = check_consistency(b.build())
        assert ("type", "A") in result.forced_empty


class TestSeverities:
    def test_sublink_and_role_warnings_type_errors(self):
        b = SchemaBuilder("s")
        b.nolot("A").nolot("B").nolot("C").lot("K", char(3))
        b.subtype("B", "A").subtype("C", "A")
        b.subset("sublink:B_IS_A", "sublink:C_IS_A")
        b.exclusion("sublink:B_IS_A", "sublink:C_IS_A")
        b.fact("f", ("B", "x"), ("K", "y"))
        result = check_consistency(b.build())
        severities = {d.code: d.severity for d in result.diagnostics}
        assert severities["FORCED_EMPTY_TYPE"] is Severity.ERROR
        assert severities["FORCED_EMPTY_ROLE"] is Severity.WARNING
        assert severities["FORCED_EMPTY_SUBLINK"] is Severity.WARNING
