"""Tests for RIDL-A function 4 (referability) and the analyze() API."""

import pytest

from repro.analyzer import Severity, analyze, check_referability, require_mappable
from repro.brm import SchemaBuilder, char
from repro.errors import AnalysisError


def errors_by_subject(diagnostics):
    return {d.subject: d for d in diagnostics if d.severity is Severity.ERROR}


class TestReferability:
    def test_referable_schema_reports_schemes(self):
        b = SchemaBuilder()
        b.nolot("Paper").lot("Paper_Id", char(6))
        b.identifier("Paper", "Paper_Id")
        found = check_referability(b.build())
        info = [d for d in found if d.code == "REFERENCE_SCHEME"]
        assert [d.subject for d in info] == ["Paper"]
        assert "Paper_Id" in info[0].message

    def test_nolot_without_any_scheme(self):
        b = SchemaBuilder()
        b.nolot("Ghost").lot("Name", char(10))
        b.attribute("Ghost", "Name")
        errors = errors_by_subject(check_referability(b.build()))
        assert "Ghost" in errors
        assert "no candidate naming convention" in errors["Ghost"].message

    def test_blocked_scheme_names_blocker(self):
        b = SchemaBuilder()
        b.nolot("Talk").nolot("Ghost")
        b.identifier("Talk", "Ghost", fact="talk_on")
        errors = errors_by_subject(check_referability(b.build()))
        assert "Talk" in errors
        assert "Ghost" in errors["Talk"].message

    def test_subtype_blocked_by_unreferable_supertype(self):
        b = SchemaBuilder()
        b.nolot("Paper").nolot("PP")
        b.subtype("PP", "Paper")
        errors = errors_by_subject(check_referability(b.build()))
        assert set(errors) == {"Paper", "PP"}
        assert "Paper" in errors["PP"].message


class TestAnalyzeApi:
    def good_schema(self):
        b = SchemaBuilder("good")
        b.nolot("Paper").lot("Paper_Id", char(6)).lot("Title", char(50))
        b.identifier("Paper", "Paper_Id")
        b.attribute("Paper", "Title", total=True)
        return b.build()

    def test_clean_schema_is_mappable(self):
        report = analyze(self.good_schema())
        assert report.is_mappable
        assert report.errors == []
        assert "MAPPABLE" in report.render()

    def test_report_sections_populated(self):
        b = SchemaBuilder("messy")
        b.nolot("Ghost").lot("A", char(3)).lot("B", char(3))
        b.fact("ll", ("A", "x"), ("B", "y"))  # LOT-LOT: correctness error
        report = analyze(b.build())
        assert any(d.code == "LEXICAL_FACT" for d in report.correctness)
        assert any(d.code == "ISOLATED_OBJECT_TYPE" for d in report.completeness)
        assert any(d.code == "NOT_REFERABLE" for d in report.referability)
        assert not report.is_mappable

    def test_require_mappable_passes_clean(self):
        report = require_mappable(self.good_schema())
        assert report.is_mappable

    def test_require_mappable_raises_on_errors(self):
        b = SchemaBuilder("bad")
        b.nolot("Ghost")
        b.lot("K", char(3))
        b.attribute("Ghost", "K")  # not identifying: Ghost unreferable
        with pytest.raises(AnalysisError) as excinfo:
            require_mappable(b.build())
        assert "not mappable" in str(excinfo.value)

    def test_render_lists_verdict_and_counts(self):
        report = analyze(self.good_schema())
        rendered = report.render()
        assert "1. Correctness" in rendered
        assert "4. Referability" in rendered
        assert "0 errors" in rendered
