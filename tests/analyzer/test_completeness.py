"""Tests for RIDL-A function 2 (completeness)."""

from repro.analyzer import check_completeness
from repro.brm import BinarySchema, SchemaBuilder, char


def codes(diagnostics):
    return {d.code for d in diagnostics}


class TestEmptySchema:
    def test_empty_schema_is_incomplete(self):
        assert "EMPTY_SCHEMA" in codes(check_completeness(BinarySchema()))

    def test_non_empty_schema_passes(self):
        b = SchemaBuilder()
        b.nolot("A").lot("K", char(3))
        b.identifier("A", "K")
        assert "EMPTY_SCHEMA" not in codes(check_completeness(b.build()))


class TestIsolation:
    def test_isolated_object_type_warned(self):
        b = SchemaBuilder()
        b.nolot("Loner")
        assert "ISOLATED_OBJECT_TYPE" in codes(check_completeness(b.build()))

    def test_subtype_without_roles_is_not_isolated(self):
        b = SchemaBuilder()
        b.nolot("Paper").nolot("PP").lot("K", char(3))
        b.identifier("Paper", "K")
        b.subtype("PP", "Paper")
        diagnostics = check_completeness(b.build())
        subjects = {d.subject for d in diagnostics if d.code == "ISOLATED_OBJECT_TYPE"}
        assert "PP" not in subjects


class TestFactUniqueness:
    def test_unconstrained_fact_warned(self):
        b = SchemaBuilder()
        b.nolot("A").lot("K", char(3))
        b.fact("f", ("A", "x"), ("K", "y"))
        found = [d for d in check_completeness(b.build()) if d.code == "NO_UNIQUENESS"]
        assert [d.subject for d in found] == ["f"]

    def test_pair_uniqueness_counts(self):
        b = SchemaBuilder()
        b.nolot("A").nolot("B")
        b.fact("f", ("A", "x"), ("B", "y"), unique="pair")
        assert "NO_UNIQUENESS" not in codes(check_completeness(b.build()))

    def test_simple_uniqueness_counts(self):
        b = SchemaBuilder()
        b.nolot("A").lot("K", char(3))
        b.fact("f", ("A", "x"), ("K", "y"), unique="first")
        assert "NO_UNIQUENESS" not in codes(check_completeness(b.build()))


class TestSubtypeDistinguishability:
    def test_bare_subtype_warned(self):
        b = SchemaBuilder()
        b.nolot("Paper").nolot("PP").lot("K", char(3))
        b.identifier("Paper", "K")
        b.subtype("PP", "Paper")
        found = [
            d
            for d in check_completeness(b.build())
            if d.code == "INDISTINCT_SUBTYPE"
        ]
        assert [d.subject for d in found] == ["PP"]

    def test_subtype_with_own_fact_is_fine(self):
        b = SchemaBuilder()
        b.nolot("Paper").nolot("PP").lot("K", char(3)).lot("G", char(2))
        b.identifier("Paper", "K")
        b.subtype("PP", "Paper")
        b.attribute("PP", "G", total=True)
        assert "INDISTINCT_SUBTYPE" not in codes(check_completeness(b.build()))

    def test_constrained_subtype_is_fine(self):
        b = SchemaBuilder()
        b.nolot("Paper").nolot("PP").nolot("IP").lot("K", char(3))
        b.identifier("Paper", "K")
        b.subtype("PP", "Paper").subtype("IP", "Paper")
        b.exclusion("sublink:PP_IS_Paper", "sublink:IP_IS_Paper")
        assert "INDISTINCT_SUBTYPE" not in codes(check_completeness(b.build()))
