"""Property-based tests for the predicate algebra."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational import And, Compare, InValues, IsNull, Not, NotNull, Or

COLUMNS = ("a", "b", "c")


@st.composite
def atoms(draw):
    column = draw(st.sampled_from(COLUMNS))
    kind = draw(st.sampled_from(["isnull", "notnull", "compare", "in"]))
    if kind == "isnull":
        return IsNull(column)
    if kind == "notnull":
        return NotNull(column)
    if kind == "compare":
        op = draw(st.sampled_from(["=", "<>", "<", "<=", ">", ">="]))
        return Compare(column, op, draw(st.integers(-3, 3)))
    values = draw(
        st.lists(st.integers(-3, 3), min_size=1, max_size=3, unique=True)
    )
    return InValues(column, tuple(values))


@st.composite
def predicates(draw, depth=2):
    if depth == 0:
        return draw(atoms())
    kind = draw(st.sampled_from(["atom", "and", "or", "not"]))
    if kind == "atom":
        return draw(atoms())
    if kind == "not":
        return Not(draw(predicates(depth=depth - 1)))
    operands = tuple(
        draw(predicates(depth=depth - 1))
        for _ in range(draw(st.integers(2, 3)))
    )
    return And(operands) if kind == "and" else Or(operands)


@st.composite
def rows(draw):
    return {
        column: draw(st.one_of(st.none(), st.integers(-3, 3)))
        for column in COLUMNS
    }


class TestPredicateAlgebraProperties:
    @settings(max_examples=200, deadline=None)
    @given(predicate=predicates(), row=rows())
    def test_negation_is_complement(self, predicate, row):
        assert Not(predicate).evaluate(row) == (not predicate.evaluate(row))

    @settings(max_examples=200, deadline=None)
    @given(left=predicates(), right=predicates(), row=rows())
    def test_de_morgan(self, left, right, row):
        conjunction = Not(And((left, right)))
        disjunction = Or((Not(left), Not(right)))
        assert conjunction.evaluate(row) == disjunction.evaluate(row)

    @settings(max_examples=200, deadline=None)
    @given(predicate=predicates(), row=rows())
    def test_render_mentions_all_columns(self, predicate, row):
        rendered = predicate.render()
        for column in predicate.columns():
            assert column in rendered

    @settings(max_examples=100, deadline=None)
    @given(row=rows())
    def test_null_dichotomy(self, row):
        for column in COLUMNS:
            assert IsNull(column).evaluate(row) != NotNull(column).evaluate(row)

    @settings(max_examples=200, deadline=None)
    @given(predicate=predicates(), row=rows())
    def test_evaluation_is_pure(self, predicate, row):
        first = predicate.evaluate(dict(row))
        second = predicate.evaluate(dict(row))
        assert first == second
