"""Tests for the CHECK-constraint predicate language."""

import pytest

from repro.relational import (
    And,
    Compare,
    InValues,
    IsNull,
    Not,
    NotNull,
    Or,
    and_,
    dependent_existence,
    equal_existence,
    or_,
    render_literal,
)


class TestAtoms:
    def test_is_null(self):
        assert IsNull("a").evaluate({"a": None})
        assert not IsNull("a").evaluate({"a": 1})
        assert IsNull("a").evaluate({})  # absent column counts as NULL

    def test_not_null(self):
        assert NotNull("a").evaluate({"a": 0})
        assert not NotNull("a").evaluate({"a": None})

    def test_compare_operators(self):
        row = {"n": 5}
        assert Compare("n", "=", 5).evaluate(row)
        assert Compare("n", "<>", 4).evaluate(row)
        assert Compare("n", "<", 6).evaluate(row)
        assert Compare("n", "<=", 5).evaluate(row)
        assert Compare("n", ">", 4).evaluate(row)
        assert Compare("n", ">=", 5).evaluate(row)

    def test_compare_null_never_matches(self):
        assert not Compare("n", "=", None and 0).evaluate({"n": None})
        assert not Compare("n", "<>", 5).evaluate({"n": None})

    def test_compare_rejects_bad_operator(self):
        with pytest.raises(ValueError):
            Compare("n", "!=", 5)

    def test_in_values(self):
        pred = InValues("flag", ("Y", "N"))
        assert pred.evaluate({"flag": "Y"})
        assert not pred.evaluate({"flag": "X"})
        assert not pred.evaluate({"flag": None})

    def test_in_values_requires_values(self):
        with pytest.raises(ValueError):
            InValues("flag", ())


class TestCombinators:
    def test_and_or_not(self):
        pred = And((NotNull("a"), Or((IsNull("b"), Compare("b", "=", 1)))))
        assert pred.evaluate({"a": 1, "b": None})
        assert pred.evaluate({"a": 1, "b": 1})
        assert not pred.evaluate({"a": None, "b": None})
        assert not pred.evaluate({"a": 1, "b": 2})
        assert Not(IsNull("a")).evaluate({"a": 1})

    def test_binary_combinators_require_two_operands(self):
        with pytest.raises(ValueError):
            And((IsNull("a"),))
        with pytest.raises(ValueError):
            Or((IsNull("a"),))

    def test_lowercase_helpers_collapse_singletons(self):
        single = and_(IsNull("a"))
        assert isinstance(single, IsNull)
        assert isinstance(or_(IsNull("a"), IsNull("b")), Or)

    def test_columns_collects_all(self):
        pred = And((NotNull("a"), Or((IsNull("b"), Compare("c", "=", 1)))))
        assert pred.columns() == {"a", "b", "c"}


class TestPaperShapes:
    def test_dependent_existence_matches_paper(self):
        # C_DE$_8: Person_presenting requires Paper_ProgramId_with.
        pred = dependent_existence("Person_presenting", "Paper_ProgramId_with")
        assert pred.evaluate({"Person_presenting": None, "Paper_ProgramId_with": None})
        assert pred.evaluate({"Person_presenting": None, "Paper_ProgramId_with": "P1"})
        assert pred.evaluate({"Person_presenting": "Ann", "Paper_ProgramId_with": "P1"})
        assert not pred.evaluate(
            {"Person_presenting": "Ann", "Paper_ProgramId_with": None}
        )

    def test_dependent_existence_rendering(self):
        text = dependent_existence("a", "b").render()
        assert "( a IS NOT NULL )" in text
        assert "( a IS NULL )" in text
        assert " OR " in text

    def test_equal_existence_matches_paper(self):
        # C_EE$_6: Paper_ProgramId_with and Session_comprising together.
        pred = equal_existence(("Paper_ProgramId_with", "Session_comprising"))
        assert pred.evaluate(
            {"Paper_ProgramId_with": None, "Session_comprising": None}
        )
        assert pred.evaluate({"Paper_ProgramId_with": "P1", "Session_comprising": 3})
        assert not pred.evaluate(
            {"Paper_ProgramId_with": "P1", "Session_comprising": None}
        )

    def test_equal_existence_needs_two_columns(self):
        with pytest.raises(ValueError):
            equal_existence(("only",))


class TestRendering:
    def test_literals(self):
        assert render_literal(None) == "NULL"
        assert render_literal(5) == "5"
        assert render_literal("O'Hara") == "'O''Hara'"
        assert render_literal(True) == "'Y'"
        assert render_literal(False) == "'N'"

    def test_nested_render(self):
        pred = Or((And((IsNull("a"), IsNull("b"))), NotNull("a")))
        assert pred.render() == (
            "( ( ( a IS NULL ) AND ( b IS NULL ) ) OR ( a IS NOT NULL ) )"
        )

    def test_str_is_render(self):
        assert str(IsNull("a")) == IsNull("a").render()
