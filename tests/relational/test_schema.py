"""Tests for the generic relational schema."""

import pytest

from repro.brm import char, numeric
from repro.relational import (
    Attribute,
    CandidateKey,
    CheckConstraint,
    Domain,
    EqualityViewConstraint,
    ForeignKey,
    NotNull,
    PrimaryKey,
    Relation,
    RelationalSchema,
    SelectSpec,
    SubsetViewConstraint,
)
from repro.errors import DuplicateNameError, SchemaError, UnknownElementError


@pytest.fixture
def schema():
    s = RelationalSchema("conf")
    s.add_domain(Domain("D_Paper_Id", char(6)))
    s.add_domain(Domain("D_Title", char(50)))
    s.add_relation(
        Relation(
            "Paper",
            (
                Attribute("Paper_Id", "D_Paper_Id"),
                Attribute("Title_of", "D_Title"),
                Attribute("Paper_ProgramId_Is", "D_Paper_Id", nullable=True),
            ),
        )
    )
    s.add_constraint(PrimaryKey("C_KEY$_1", relation="Paper", columns=("Paper_Id",)))
    return s


class TestDomains:
    def test_readding_identical_domain_is_noop(self, schema):
        schema.add_domain(Domain("D_Paper_Id", char(6)))
        assert len(schema.domains) == 2

    def test_conflicting_domain_rejected(self, schema):
        with pytest.raises(DuplicateNameError):
            schema.add_domain(Domain("D_Paper_Id", char(7)))

    def test_attribute_requires_domain(self, schema):
        with pytest.raises(UnknownElementError):
            schema.add_relation(
                Relation("Bad", (Attribute("x", "D_Missing"),))
            )


class TestRelations:
    def test_duplicate_relation_rejected(self, schema):
        with pytest.raises(DuplicateNameError):
            schema.add_relation(Relation("Paper", ()))

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(SchemaError):
            Relation(
                "R",
                (Attribute("a", "D"), Attribute("a", "D")),
            )

    def test_attribute_lookup(self, schema):
        relation = schema.relation("Paper")
        assert relation.attribute("Title_of").domain == "D_Title"
        assert relation.attribute("Paper_ProgramId_Is").nullable
        with pytest.raises(UnknownElementError):
            relation.attribute("nope")

    def test_with_attribute(self, schema):
        relation = schema.relation("Paper")
        extended = relation.with_attribute(Attribute("Extra", "D_Title"))
        assert extended.has_attribute("Extra")
        assert not relation.has_attribute("Extra")
        with pytest.raises(DuplicateNameError):
            extended.with_attribute(Attribute("Extra", "D_Title"))

    def test_without_attribute(self, schema):
        relation = schema.relation("Paper")
        shrunk = relation.without_attribute("Title_of")
        assert not shrunk.has_attribute("Title_of")
        with pytest.raises(UnknownElementError):
            relation.without_attribute("nope")

    def test_replace_relation_validates_constraints(self, schema):
        with pytest.raises(SchemaError):
            schema.replace_relation(
                Relation("Paper", (Attribute("Other", "D_Title"),))
            )

    def test_remove_relation_in_use(self, schema):
        with pytest.raises(SchemaError):
            schema.remove_relation("Paper")
        schema.remove_constraint("C_KEY$_1")
        schema.remove_relation("Paper")
        assert not schema.has_relation("Paper")


class TestKeys:
    def test_single_primary_key(self, schema):
        with pytest.raises(SchemaError):
            schema.add_constraint(
                PrimaryKey("C_KEY$_2", relation="Paper", columns=("Title_of",))
            )

    def test_candidate_keys(self, schema):
        schema.add_constraint(
            CandidateKey("C_KEY$_2", relation="Paper", columns=("Paper_ProgramId_Is",))
        )
        assert schema.keys_of("Paper") == [("Paper_Id",), ("Paper_ProgramId_Is",)]

    def test_key_requires_columns(self):
        with pytest.raises(SchemaError):
            PrimaryKey("K", relation="R", columns=())

    def test_key_rejects_duplicate_columns(self):
        with pytest.raises(SchemaError):
            PrimaryKey("K", relation="R", columns=("a", "a"))

    def test_constraint_must_reference_existing_columns(self, schema):
        with pytest.raises(SchemaError):
            schema.add_constraint(
                CandidateKey("C", relation="Paper", columns=("Nope",))
            )


class TestForeignKeys:
    def test_compatible_domains_required(self, schema):
        schema.add_relation(
            Relation("Other", (Attribute("Ref", "D_Title"),))
        )
        with pytest.raises(SchemaError):
            schema.add_constraint(
                ForeignKey(
                    "FK",
                    relation="Other",
                    columns=("Ref",),
                    referenced_relation="Paper",
                    referenced_columns=("Paper_Id",),
                )
            )

    def test_valid_foreign_key(self, schema):
        schema.add_relation(
            Relation("Program_Paper", (Attribute("Paper_ProgramId", "D_Paper_Id"),))
        )
        fk = ForeignKey(
            "C_FKEY$_8",
            relation="Program_Paper",
            columns=("Paper_ProgramId",),
            referenced_relation="Paper",
            referenced_columns=("Paper_ProgramId_Is",),
        )
        schema.add_constraint(fk)
        assert schema.foreign_keys("Program_Paper") == [fk]

    def test_mismatched_column_counts(self, schema):
        schema.add_relation(
            Relation("PP", (Attribute("A", "D_Paper_Id"), Attribute("B", "D_Paper_Id")))
        )
        with pytest.raises(SchemaError):
            schema.add_constraint(
                ForeignKey(
                    "FK",
                    relation="PP",
                    columns=("A", "B"),
                    referenced_relation="Paper",
                    referenced_columns=("Paper_Id",),
                )
            )

    def test_self_referencing_fk(self, schema):
        schema.add_relation(
            Relation(
                "Emp",
                (
                    Attribute("Id", "D_Paper_Id"),
                    Attribute("Boss", "D_Paper_Id", nullable=True),
                ),
            )
        )
        schema.add_constraint(PrimaryKey("PK_E", relation="Emp", columns=("Id",)))
        schema.add_constraint(
            ForeignKey(
                "FK_E",
                relation="Emp",
                columns=("Boss",),
                referenced_relation="Emp",
                referenced_columns=("Id",),
            )
        )
        assert "Emp" in schema.constraint("FK_E").relations_used()


class TestViewConstraints:
    def test_equality_view(self, schema):
        schema.add_relation(
            Relation("Program_Paper", (Attribute("Paper_ProgramId", "D_Paper_Id"),))
        )
        constraint = EqualityViewConstraint(
            "C_EQ$_3",
            left=SelectSpec("Program_Paper", ("Paper_ProgramId",)),
            right=SelectSpec(
                "Paper",
                ("Paper_ProgramId_Is",),
                where=NotNull("Paper_ProgramId_Is"),
            ),
        )
        schema.add_constraint(constraint)
        assert schema.view_constraints() == [constraint]

    def test_view_requires_matching_widths(self):
        with pytest.raises(SchemaError):
            EqualityViewConstraint(
                "bad",
                left=SelectSpec("A", ("x",)),
                right=SelectSpec("B", ("y", "z")),
            )

    def test_subset_view(self, schema):
        constraint = SubsetViewConstraint(
            "C_SUB$_1",
            subset=SelectSpec("Paper", ("Paper_ProgramId_Is",),
                              where=NotNull("Paper_ProgramId_Is")),
            superset=SelectSpec("Paper", ("Paper_Id",)),
        )
        schema.add_constraint(constraint)
        assert constraint in schema.view_constraints()

    def test_check_constraint_registration(self, schema):
        constraint = CheckConstraint(
            "C_DE$_1", relation="Paper", predicate=NotNull("Title_of")
        )
        schema.add_constraint(constraint)
        assert schema.checks("Paper") == [constraint]
        assert schema.checks("Other") == []


class TestWholeSchema:
    def test_copy_is_independent(self, schema):
        duplicate = schema.copy()
        duplicate.add_domain(Domain("D_New", numeric(3)))
        assert len(schema.domains) == 2
        assert len(duplicate.domains) == 3

    def test_fresh_constraint_name(self, schema):
        assert schema.fresh_constraint_name("C_KEY$") == "C_KEY$_2"
        assert schema.fresh_constraint_name("C_EQ$") == "C_EQ$_1"

    def test_stats(self, schema):
        stats = schema.stats()
        assert stats["relations"] == 1
        assert stats["attributes"] == 3
        assert stats["constraints"] == 1

    def test_constraints_on(self, schema):
        assert [c.name for c in schema.constraints_on("Paper")] == ["C_KEY$_1"]
