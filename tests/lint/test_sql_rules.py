"""``SQL2xx`` — dialect and DDL identifier checks."""

from dataclasses import replace

from repro.lint import lint_schema
from repro.lint.rules_sql import IDENTIFIER
from repro.relational.schema import Attribute, Relation


def doctored(result, relation_name, column="x"):
    relational = result.relational.copy()
    domain = relational.domains[0].name
    relational.add_relation(
        Relation(relation_name, (Attribute(column, domain),))
    )
    return replace(result, relational=relational)


class TestIdentifierShape:
    def test_identifier_pattern_matches_1989_dialect_rules(self):
        assert IDENTIFIER.match("Paper_Id")
        assert IDENTIFIER.match("C_SUB$1")
        assert not IDENTIFIER.match("2Paper")
        assert not IDENTIFIER.match("has space")

    def test_clean_mappings_produce_legal_identifiers(
        self, fig6, fig6_result, cris, cris_result
    ):
        for schema, result in ((fig6, fig6_result), (cris, cris_result)):
            report = lint_schema(
                schema, result=result, select=["SQL201", "SQL202"]
            )
            assert report.diagnostics == []

    def test_invalid_identifier_is_an_error(self, fig6, fig6_result):
        report = lint_schema(
            fig6,
            result=doctored(fig6_result, "2Papers"),
            select=["SQL201"],
        )
        assert [d.subject for d in report.diagnostics] == ["2Papers"]
        assert report.exit_code == 1

    def test_case_insensitive_collision_is_an_error(self, fig6, fig6_result):
        report = lint_schema(
            fig6,
            result=doctored(fig6_result, "PAPER"),
            select=["SQL202"],
        )
        assert len(report.diagnostics) == 1
        assert "Paper" in report.diagnostics[0].message


class TestDialectLimits:
    def test_db2_18_char_limit_flags_long_cris_columns(
        self, cris, cris_result
    ):
        report = lint_schema(
            cris, result=cris_result, dialect="db2", select=["SQL203"]
        )
        subjects = {d.subject for d in report.diagnostics}
        assert "Paper_Id_refereed_by" in subjects
        for diagnostic in report.diagnostics:
            assert len(diagnostic.subject) > 18
            assert diagnostic.severity.value == "warning"

    def test_sql2_128_char_limit_is_never_hit(self, cris, cris_result):
        report = lint_schema(
            cris, result=cris_result, dialect="sql2", select=["SQL203"]
        )
        assert report.diagnostics == []

    def test_oracle_reserved_word_session_is_flagged(self, cris, cris_result):
        report = lint_schema(
            cris, result=cris_result, dialect="oracle", select=["SQL204"]
        )
        assert [d.subject for d in report.diagnostics] == ["Session"]

    def test_session_is_not_reserved_in_sql2(self, cris, cris_result):
        report = lint_schema(
            cris, result=cris_result, dialect="sql2", select=["SQL204"]
        )
        assert report.diagnostics == []


class TestCheckerPortability:
    """SQL205 — unportable identifiers inside compiled checkers."""

    def test_db2_truncation_flags_the_affected_rules(
        self, cris, cris_result
    ):
        report = lint_schema(
            cris, result=cris_result, dialect="db2", select=["SQL205"]
        )
        assert report.diagnostics, "18-char limit should bite CRIS"
        for diagnostic in report.diagnostics:
            assert diagnostic.severity.value == "warning"
            assert "truncate or reserve" in diagnostic.message
        # The subject is the lossless rule, not the identifier: the
        # finding names which checker query cannot run.
        subjects = {d.subject for d in report.diagnostics}
        assert any(s.startswith(("C_", "NN$_")) for s in subjects)

    def test_oracle_reserved_session_taints_its_checkers(
        self, cris, cris_result
    ):
        report = lint_schema(
            cris, result=cris_result, dialect="oracle", select=["SQL205"]
        )
        assert report.diagnostics
        for diagnostic in report.diagnostics:
            assert "Session" in diagnostic.message

    def test_sql2_checkers_are_clean(self, cris, cris_result):
        report = lint_schema(
            cris, result=cris_result, dialect="sql2", select=["SQL205"]
        )
        assert report.diagnostics == []
