"""``MAP3xx`` — cross-artifact checks over the map report."""

import copy
from dataclasses import replace

from repro.lint import lint_schema
from repro.relational.schema import Attribute, Relation


def with_provenance(result, mutate):
    provenance = copy.deepcopy(result.provenance)
    mutate(provenance)
    return replace(result, provenance=provenance)


def diagnostics(schema, result, code):
    report = lint_schema(schema, result=result, select=[code])
    return report.diagnostics


class TestBackwardsMapResolution:
    def test_clean_mappings_have_no_map_findings(
        self, fig6, fig6_result, cris, cris_result
    ):
        for schema, result in ((fig6, fig6_result), (cris, cris_result)):
            report = lint_schema(schema, result=result, select=["MAP"])
            assert report.diagnostics == []

    def test_dangling_table_ref(self, fig6, fig6_result):
        doctored = with_provenance(
            fig6_result,
            lambda p: p.add_table("Ghost_Table", "NOLOT Ghost"),
        )
        found = diagnostics(fig6, doctored, "MAP301")
        assert [d.subject for d in found] == ["Ghost_Table"]
        assert found[0].severity.value == "error"

    def test_dangling_column_ref_missing_relation(self, fig6, fig6_result):
        doctored = with_provenance(
            fig6_result,
            lambda p: p.add_column("Ghost_Table", "col", "role x"),
        )
        found = diagnostics(fig6, doctored, "MAP302")
        assert [d.subject for d in found] == ["Ghost_Table.col"]

    def test_dangling_column_ref_missing_column(self, fig6, fig6_result):
        doctored = with_provenance(
            fig6_result,
            lambda p: p.add_column("Paper", "no_such_col", "role x"),
        )
        found = diagnostics(fig6, doctored, "MAP302")
        assert [d.subject for d in found] == ["Paper.no_such_col"]

    def test_dangling_constraint_ref(self, fig6, fig6_result):
        doctored = with_provenance(
            fig6_result,
            lambda p: p.add_constraint("C_GHOST", "constraint X"),
        )
        found = diagnostics(fig6, doctored, "MAP303")
        assert [d.subject for d in found] == ["C_GHOST"]

    def test_pseudo_constraint_refs_are_resolvable(self):
        """A cross-relation exclusion degrades to pseudo-SQL; its
        provenance entry must count as resolved."""
        from repro.brm import SchemaBuilder, char, numeric
        from repro.mapper import MappingOptions, NullPolicy, map_schema

        b = SchemaBuilder("s")
        b.nolot("Paper").lot("Paper_Id", char(6))
        b.identifier("Paper", "Paper_Id")
        b.lot_nolot("Person", char(30)).lot_nolot("Session", numeric(3))
        b.attribute("Paper", "Person", fact="by")
        b.attribute("Paper", "Session", fact="during")
        b.exclusion(("by", "with"), ("during", "with"))
        schema = b.build()
        result = map_schema(
            schema, MappingOptions(null_policy=NullPolicy.NOT_ALLOWED)
        )
        assert result.pseudo_constraints
        assert diagnostics(schema, result, "MAP303") == []


class TestForwardsMapResolution:
    def test_unresolved_forward_select(self, fig6, fig6_result):
        doctored = with_provenance(
            fig6_result,
            lambda p: p.add_forward(
                "NOLOT Ghost", "SELECT x FROM Ghost_Table"
            ),
        )
        found = diagnostics(fig6, doctored, "MAP304")
        assert [d.subject for d in found] == ["NOLOT Ghost"]
        assert "Ghost_Table" in found[0].message

    def test_non_select_forward_text_is_ignored(self, fig6, fig6_result):
        doctored = with_provenance(
            fig6_result,
            lambda p: p.add_forward(
                "LOT Title", "column Title of table Ghost_Table"
            ),
        )
        assert diagnostics(fig6, doctored, "MAP304") == []


class TestDocumentationDiscipline:
    def test_undocumented_relation(self, fig6, fig6_result):
        relational = fig6_result.relational.copy()
        domain = relational.domains[0].name
        relational.add_relation(
            Relation("Stray", (Attribute("x", domain),))
        )
        doctored = replace(fig6_result, relational=relational)
        found = diagnostics(fig6, doctored, "MAP305")
        assert [d.subject for d in found] == ["Stray"]
        assert found[0].severity.value == "warning"

    def test_undocumented_constraint(self, fig6, fig6_result):
        from repro.relational.constraints import CandidateKey, PrimaryKey

        relational = fig6_result.relational
        non_key = [
            name
            for name in fig6_result.provenance.constraints
            if relational.has_constraint(name)
            and not isinstance(
                relational.constraint(name), (PrimaryKey, CandidateKey)
            )
        ]
        assert non_key, "fig6 should document at least one non-key constraint"

        def forget(provenance):
            del provenance.constraints[non_key[0]]
            forget.victim = non_key[0]

        doctored = with_provenance(fig6_result, forget)
        found = diagnostics(fig6, doctored, "MAP306")
        assert [d.subject for d in found] == [forget.victim]

    def test_key_constraints_need_no_derivation(self, fig6, fig6_result):
        """Primary/candidate keys are exempt from MAP306."""
        from repro.relational.constraints import CandidateKey, PrimaryKey

        keys = [
            c
            for c in fig6_result.relational.constraints
            if isinstance(c, (PrimaryKey, CandidateKey))
        ]
        assert keys
        documented = set(fig6_result.provenance.constraints)
        undocumented_keys = [
            c.name for c in keys if c.name not in documented
        ]
        if undocumented_keys:
            assert diagnostics(fig6, fig6_result, "MAP306") == []
