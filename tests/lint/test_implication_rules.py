"""The ``IMP4xx`` implication-proof lint rules."""

from repro.brm import SchemaBuilder, char
from repro.dsl import to_dsl
from repro.lint import lint_schema


def codes(report):
    return [d.code for d in report.diagnostics]


def schema_with_redundant_subset():
    b = SchemaBuilder("T")
    b.nolot("P").lot("K", char(3)).lot("L", char(3)).lot("M", char(3))
    b.fact("f", ("P", "x"), ("K", "y"))
    b.fact("g", ("P", "x"), ("L", "y"))
    b.fact("h", ("P", "x"), ("M", "y"))
    b.subset(("h", "x"), ("g", "x"), name="S1")
    b.subset(("g", "x"), ("f", "x"), name="S2")
    b.subset(("h", "x"), ("f", "x"), name="S3")
    return b.build()


class TestImpliedRules:
    def test_imp401_names_subject_and_proof_chain(self):
        report = lint_schema(schema_with_redundant_subset())
        (finding,) = [
            d for d in report.diagnostics if d.code == "IMP401"
        ]
        assert finding.subject == "S3"
        assert "S1" in finding.message and "S2" in finding.message
        assert "proof:" in finding.message

    def test_imp402_and_imp401_on_mutual_implication(self):
        b = SchemaBuilder("T")
        b.nolot("P").lot("K", char(3)).lot("L", char(3))
        b.fact("f", ("P", "x"), ("K", "y"))
        b.fact("g", ("P", "x"), ("L", "y"))
        b.subset(("g", "x"), ("f", "x"), name="S1")
        b.subset(("f", "x"), ("g", "x"), name="S2")
        b.equality(("f", "x"), ("g", "x"), name="E1")
        found = codes(lint_schema(b.build()))
        assert "IMP402" in found
        assert found.count("IMP401") == 2

    def test_imp403_and_imp404_on_uniqueness_frequency_pair(self):
        b = SchemaBuilder("T")
        b.nolot("P").lot("K", char(3))
        b.fact("f", ("P", "x"), ("K", "y"))
        b.unique(("f", "x"), name="U1")
        b.frequency(("f", "x"), 1, 1, name="F1")
        found = codes(lint_schema(b.build()))
        assert "IMP403" in found and "IMP404" in found

    def test_imp405_on_contained_value_domain(self):
        b = SchemaBuilder("T")
        b.nolot("P").lot("K", char(3))
        b.fact("f", ("P", "x"), ("K", "y"))
        b.values("K", ("a", "b", "c"), name="VWIDE")
        b.values("K", ("a", "b"), name="VTIGHT")
        report = lint_schema(b.build())
        subjects = [
            d.subject for d in report.diagnostics if d.code == "IMP405"
        ]
        assert subjects == ["VWIDE"]


class TestEmptinessAndContradictionRules:
    def test_imp406_on_forced_empty_role(self):
        b = SchemaBuilder("T")
        b.nolot("P").lot("K", char(3)).lot("L", char(3))
        b.fact("f", ("P", "x"), ("K", "y"))
        b.fact("g", ("P", "x"), ("L", "y"))
        b.subset(("g", "x"), ("f", "x"), name="S1")
        b.exclusion(("f", "x"), ("g", "x"), name="X1")
        report = lint_schema(b.build())
        subjects = {
            d.subject for d in report.diagnostics if d.code == "IMP406"
        }
        assert "g.x" in subjects

    def test_imp407_is_an_error_and_gates_the_report(self):
        b = SchemaBuilder("T")
        b.nolot("P").lot("K", char(3))
        b.fact("f", ("P", "x"), ("K", "y"))
        b.frequency(("f", "x"), 2, 3, name="F1")
        b.frequency(("f", "x"), 5, 9, name="F2")
        report = lint_schema(b.build())
        imp407 = [d for d in report.diagnostics if d.code == "IMP407"]
        assert imp407 and all(
            d.severity.value == "error" for d in imp407
        )
        assert report.errors

    def test_imp408_on_disjoint_value_domains(self):
        b = SchemaBuilder("T")
        b.nolot("P").lot("K", char(3))
        b.fact("f", ("P", "x"), ("K", "y"))
        b.values("K", ("a", "b"), name="V1")
        b.values("K", ("c", "d"), name="V2")
        report = lint_schema(b.build())
        subjects = {
            d.subject for d in report.diagnostics if d.code == "IMP408"
        }
        assert "K" in subjects


class TestSelectionAndSuppression:
    def test_family_prefix_selects_only_imp_rules(self):
        report = lint_schema(
            schema_with_redundant_subset(), select=["IMP"]
        )
        assert codes(report) == ["IMP401"]

    def test_file_pragma_suppresses_imp_findings(self):
        schema = schema_with_redundant_subset()
        source = to_dsl(schema) + "\n-- lint: disable=IMP401\n"
        report = lint_schema(schema, source=source)
        assert "IMP401" not in codes(report)
        assert report.suppressed >= 1
