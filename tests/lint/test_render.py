"""The three renderers: text, JSON, SARIF 2.1.0.

The ISSUE's determinism bar: all three formats must be byte-for-byte
identical across runs on the same input.  The SARIF output must be
structurally valid 2.1.0 — checked here against the spec's required
shape (the full JSON schema is validated in CI where ``jsonschema``
is installed).
"""

import json

from repro.lint import lint_schema, render_json, render_sarif, render_text
from repro.lint.render import SARIF_LEVELS, SARIF_SCHEMA_URI
from repro.lint.registry import all_rules


def fresh_report(fig6, fig6_result):
    return lint_schema(fig6, result=fig6_result)


class TestDeterminism:
    def test_all_formats_are_byte_deterministic(self, fig6, fig6_result):
        first = lint_schema(fig6, result=fig6_result)
        second = lint_schema(fig6, result=fig6_result)
        assert render_text(first) == render_text(second)
        assert render_json(first) == render_json(second)
        assert render_sarif(first, artifact_uri="fig6.ridl") == render_sarif(
            second, artifact_uri="fig6.ridl"
        )

    def test_diagnostics_are_sorted_by_code_then_subject(
        self, fig6, fig6_result
    ):
        report = lint_schema(fig6, result=fig6_result)
        keys = [d.sort_key() for d in report.diagnostics]
        assert keys == sorted(keys)


class TestTextFormat:
    def test_header_findings_and_summary(self, fig6, fig6_result):
        text = render_text(fresh_report(fig6, fig6_result))
        lines = text.splitlines()
        assert lines[0] == "repro lint report for schema 'figure6'"
        assert any("BRM009" in line for line in lines)
        assert "error(s)" in lines[-1] and "warning(s)" in lines[-1]

    def test_line_format_is_severity_code_subject_message(
        self, fig6, fig6_result
    ):
        report = fresh_report(fig6, fig6_result)
        diagnostic = report.diagnostics[0]
        assert str(diagnostic) == (
            f"{diagnostic.severity.value}[{diagnostic.code}] "
            f"{diagnostic.subject}: {diagnostic.message}"
        )


class TestJsonFormat:
    def test_round_trips_and_carries_counts(self, fig6, fig6_result):
        report = fresh_report(fig6, fig6_result)
        document = json.loads(render_json(report))
        assert document["schema"] == "figure6"
        assert document["counts"] == report.counts()
        assert len(document["diagnostics"]) == len(report.diagnostics)
        for entry, diagnostic in zip(
            document["diagnostics"], report.diagnostics
        ):
            assert entry["code"] == diagnostic.code
            assert entry["severity"] == diagnostic.severity.value
            assert entry["subject"] == diagnostic.subject
            assert entry["message"] == diagnostic.message


class TestSarifFormat:
    def test_required_2_1_0_shape(self, fig6, fig6_result):
        report = fresh_report(fig6, fig6_result)
        document = json.loads(render_sarif(report))
        assert document["$schema"] == SARIF_SCHEMA_URI
        assert document["version"] == "2.1.0"
        assert len(document["runs"]) == 1
        run = document["runs"][0]
        driver = run["tool"]["driver"]
        assert driver["name"] == "repro-lint"
        assert len(driver["rules"]) == len(all_rules())

    def test_rules_metadata_mirrors_the_registry(self, fig6, fig6_result):
        document = json.loads(render_sarif(fresh_report(fig6, fig6_result)))
        rules = {
            r["id"]: r for r in document["runs"][0]["tool"]["driver"]["rules"]
        }
        for rule in all_rules():
            entry = rules[rule.code]
            assert entry["name"] == rule.slug
            assert entry["shortDescription"]["text"] == rule.summary
            assert entry["defaultConfiguration"]["level"] == SARIF_LEVELS[
                rule.severity
            ]
            assert entry["properties"]["artifact"] == rule.artifact

    def test_results_reference_registered_rules(self, fig6, fig6_result):
        report = fresh_report(fig6, fig6_result)
        document = json.loads(render_sarif(report))
        run = document["runs"][0]
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert len(run["results"]) == len(report.diagnostics)
        for result in run["results"]:
            assert result["ruleId"] in rule_ids
            assert result["level"] in ("error", "warning", "note")
            assert result["message"]["text"]
            logical = result["locations"][0]["logicalLocations"][0]
            assert logical["name"]

    def test_artifact_uri_becomes_the_physical_location(
        self, fig6, fig6_result
    ):
        report = fresh_report(fig6, fig6_result)
        document = json.loads(
            render_sarif(report, artifact_uri="examples/fig6.ridl")
        )
        for result in document["runs"][0]["results"]:
            physical = result["locations"][0]["physicalLocation"]
            assert physical["artifactLocation"]["uri"] == (
                "examples/fig6.ridl"
            )

    def test_no_physical_location_without_a_uri(self, fig6, fig6_result):
        report = fresh_report(fig6, fig6_result)
        document = json.loads(render_sarif(report))
        for result in document["runs"][0]["results"]:
            assert "physicalLocation" not in result["locations"][0]
