"""The ``repro lint`` subcommand: exit codes, formats, selection."""

import io
import json

import pytest

from repro.cli import EXIT_UNMAPPABLE, EXIT_OK, EXIT_USAGE, main
from repro.cris import figure6_schema
from repro.dsl import to_dsl


def run(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


@pytest.fixture
def schema_file(tmp_path):
    path = tmp_path / "figure6.ridl"
    path.write_text(to_dsl(figure6_schema()))
    return path


@pytest.fixture
def smelly_schema_file(tmp_path):
    """Unreferable NOLOT: analyzer errors, unmappable."""
    path = tmp_path / "bad.ridl"
    path.write_text(
        "schema Bad\nnolot Ghost\nlot K : char(3)\n"
        "attribute Ghost has K\n"
    )
    return path


class TestExitCodes:
    def test_clean_schema_exits_0(self, schema_file):
        code, output = run(["lint", str(schema_file)])
        assert code == EXIT_OK
        assert "0 error(s)" in output

    def test_error_findings_exit_1(self, smelly_schema_file):
        code, output = run(["lint", str(smelly_schema_file)])
        assert code == EXIT_UNMAPPABLE
        assert "error[" in output
        assert "skipped artifact pass(es)" in output

    def test_unknown_select_code_exits_2(self, schema_file):
        code, output = run(["lint", str(schema_file), "--select", "BOGUS"])
        assert code == EXIT_USAGE
        assert output.startswith("error:")
        assert "unknown lint code" in output
        assert len(output.strip().splitlines()) == 1

    def test_unknown_format_exits_2(self, schema_file):
        code, output = run(
            ["lint", str(schema_file), "--format", "xml"]
        )
        assert code == EXIT_USAGE
        assert output.startswith("error:")
        assert len(output.strip().splitlines()) == 1

    def test_missing_file_exits_2(self):
        code, _ = run(["lint", "no_such_file.ridl"])
        assert code == EXIT_USAGE

    def test_parse_error_exits_2(self, tmp_path):
        path = tmp_path / "syntax.ridl"
        path.write_text("widget Nope\n")
        code, output = run(["lint", str(path)])
        assert code == EXIT_USAGE
        assert "error:" in output


class TestSelection:
    def test_select_restricts_to_a_family(self, schema_file):
        code, output = run(
            ["lint", str(schema_file), "--select", "SQL", "--format", "json"]
        )
        assert code == EXIT_OK
        document = json.loads(output)
        assert all(
            d["code"].startswith("SQL") for d in document["diagnostics"]
        )

    def test_ignore_drops_a_code(self, schema_file):
        _, with_009 = run(["lint", str(schema_file), "--format", "json"])
        _, without = run(
            ["lint", str(schema_file), "--ignore", "BRM009", "--format", "json"]
        )
        codes_before = {
            d["code"] for d in json.loads(with_009)["diagnostics"]
        }
        codes_after = {
            d["code"] for d in json.loads(without)["diagnostics"]
        }
        assert "BRM009" in codes_before
        assert "BRM009" not in codes_after

    def test_dialect_switches_the_profile(self, tmp_path):
        from repro.cris import cris_schema

        path = tmp_path / "cris.ridl"
        path.write_text(to_dsl(cris_schema()))
        _, sql2_out = run(
            ["lint", str(path), "--select", "SQL204", "--format", "json"]
        )
        _, oracle_out = run(
            [
                "lint",
                str(path),
                "--select",
                "SQL204",
                "--dialect",
                "oracle",
                "--format",
                "json",
            ]
        )
        assert json.loads(sql2_out)["diagnostics"] == []
        oracle_codes = [
            d["subject"] for d in json.loads(oracle_out)["diagnostics"]
        ]
        assert oracle_codes == ["Session"]


class TestFormats:
    def test_json_format(self, schema_file):
        code, output = run(["lint", str(schema_file), "--format", "json"])
        assert code == EXIT_OK
        document = json.loads(output)
        assert set(document) == {
            "schema",
            "counts",
            "diagnostics",
            "skipped_artifacts",
        }

    def test_sarif_format_embeds_the_schema_path(self, schema_file):
        code, output = run(["lint", str(schema_file), "--format", "sarif"])
        assert code == EXIT_OK
        document = json.loads(output)
        assert document["version"] == "2.1.0"
        uris = {
            result["locations"][0]["physicalLocation"]["artifactLocation"][
                "uri"
            ]
            for result in document["runs"][0]["results"]
        }
        assert uris == {schema_file.as_posix()}

    def test_pragmas_in_the_file_are_honoured(self, tmp_path):
        path = tmp_path / "fig6.ridl"
        path.write_text(
            to_dsl(figure6_schema()) + "\n-- lint: disable=BRM009\n"
        )
        code, output = run(["lint", str(path)])
        assert code == EXIT_OK
        assert "BRM009" not in output
        assert "suppressed" in output
