"""``TRC1xx`` transformation-soundness rules.

The acceptance-critical scenario: a fault-injected mapping session
silently drops a source constraint without citing a lossless rule,
and the trace-soundness pass flags it as a ``TRC101`` error.
"""

from dataclasses import replace

import pytest

from repro.cris import figure6_schema
from repro.lint import lint_schema
from repro.mapper import MappingOptions, map_schema
from repro.mapper.trace import KIND_BINARY, AppliedStep
from repro.robustness import Fault, inject


def trace_errors(report, code):
    return [d for d in report.diagnostics if d.code == code]


def _drop_constraint(name):
    def mutate(state):
        if state.schema.has_constraint(name):
            state.schema.remove_constraint(name)

    return mutate


class TestTraceSoundness:
    def test_clean_mapping_has_no_trace_findings(self, fig6, fig6_result):
        report = lint_schema(fig6, result=fig6_result, select=["TRC"])
        assert report.diagnostics == []

    def test_clean_cris_mapping_has_no_trace_findings(self, cris, cris_result):
        report = lint_schema(cris, result=cris_result, select=["TRC"])
        assert report.diagnostics == []

    @pytest.mark.parametrize("victim", ["T2", "U5"])
    def test_fault_injected_constraint_drop_is_caught(self, victim):
        """A seeded mutation — a constraint dropped without a lossless
        rule — must surface as a TRC101 error naming the constraint."""
        schema = figure6_schema()
        fault = Fault(
            "materialize.constraints",
            kind="corrupt",
            mutate=_drop_constraint(victim),
        )
        with inject(fault):
            result = map_schema(schema, MappingOptions())
        assert fault.triggered == 1
        report = lint_schema(schema, result=result, select=["TRC"])
        findings = trace_errors(report, "TRC101")
        assert [d.subject for d in findings] == [victim]
        assert findings[0].severity.value == "error"
        assert report.exit_code == 1

    def test_every_fig6_constraint_drop_is_caught(self):
        """Exhaustive seeded-fault sweep: dropping any source
        constraint mid-materialization yields exactly one TRC101."""
        schema = figure6_schema()
        for constraint in schema.constraints:
            with inject(
                Fault(
                    "materialize.constraints",
                    kind="corrupt",
                    mutate=_drop_constraint(constraint.name),
                )
            ):
                result = map_schema(schema, MappingOptions())
            report = lint_schema(schema, result=result, select=["TRC101"])
            assert [d.subject for d in report.diagnostics] == [
                constraint.name
            ], constraint.name


class TestStepHygiene:
    def test_phantom_lossless_rule_citation(self, fig6, fig6_result):
        bogus = AppliedStep(
            transformation="eliminate-sublink",
            kind=KIND_BINARY,
            target="Paper",
            detail="test step citing a rule that was never materialized",
            lossless_rules=("LL_NO_SUCH_RULE",),
        )
        doctored = replace(fig6_result, steps=[*fig6_result.steps, bogus])
        report = lint_schema(fig6, result=doctored, select=["TRC102"])
        findings = report.diagnostics
        assert len(findings) == 1
        assert "LL_NO_SUCH_RULE" in findings[0].message

    def test_unknown_step_kind(self, fig6, fig6_result):
        bogus = AppliedStep(
            transformation="mystery",
            kind="binary-quantum",
            target="Paper",
            detail="kind outside the paper's three transformation classes",
        )
        doctored = replace(fig6_result, steps=[*fig6_result.steps, bogus])
        report = lint_schema(fig6, result=doctored, select=["TRC104"])
        assert len(report.diagnostics) == 1
        assert "binary-quantum" in report.diagnostics[0].message

    def test_orphan_lossless_rule(self, fig6, fig6_result):
        """A view constraint no step cites is a documentation gap."""
        stripped = [
            replace(step, lossless_rules=())
            for step in fig6_result.steps
        ]
        doctored = replace(fig6_result, steps=stripped)
        report = lint_schema(fig6, result=doctored, select=["TRC103"])
        cited = {
            rule for step in fig6_result.steps for rule in step.lossless_rules
        }
        view_names = {
            c.name for c in fig6_result.relational.view_constraints()
        }
        expected = sorted(cited & view_names)
        assert expected, "fig6 mapping should materialize view rules"
        assert [d.subject for d in report.diagnostics] == expected
