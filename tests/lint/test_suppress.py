"""``-- lint: disable=CODE`` suppression pragmas."""

import pytest

from repro.dsl import parse_pragmas, to_dsl
from repro.lint import lint_schema


class TestPragmaParsing:
    def test_comment_only_line_is_file_wide(self):
        pragmas = parse_pragmas("-- lint: disable=BRM009\nnolot X\n")
        assert pragmas.file_codes == {"BRM009"}
        assert pragmas.line_pragmas == ()

    def test_hash_comments_work_like_dash_comments(self):
        pragmas = parse_pragmas("# lint: disable=BRM009, SQL204\n")
        assert pragmas.file_codes == {"BRM009", "SQL204"}

    def test_trailing_pragma_anchors_to_the_lines_names(self):
        source = "nolot Invited_Paper under Paper  -- lint: disable=BRM009\n"
        pragmas = parse_pragmas(source)
        assert pragmas.file_codes == frozenset()
        (pragma,) = pragmas.line_pragmas
        assert pragma.line == 1
        assert pragma.codes == {"BRM009"}
        assert {"Invited_Paper", "Paper"} <= pragma.words

    def test_commented_prose_before_pragma_stays_file_wide(self):
        source = "-- per the paper, fine -- lint: disable=BRM009\n"
        pragmas = parse_pragmas(source)
        assert pragmas.file_codes == {"BRM009"}
        assert pragmas.line_pragmas == ()

    def test_codes_are_case_insensitive_and_comma_separated(self):
        pragmas = parse_pragmas("-- lint: disable=brm009,trc101\n")
        assert pragmas.file_codes == {"BRM009", "TRC101"}

    def test_no_pragmas_means_nothing_suppressed(self):
        pragmas = parse_pragmas("nolot X\nlot K : char(3)\n")
        assert not pragmas.is_suppressed("BRM009", "X")


class TestSuppressionSemantics:
    def test_file_pragma_suppresses_any_subject(self):
        pragmas = parse_pragmas("-- lint: disable=BRM009\n")
        assert pragmas.is_suppressed("BRM009", "Anything")
        assert not pragmas.is_suppressed("BRM010", "Anything")

    def test_line_pragma_suppresses_only_its_names(self):
        source = "nolot Invited_Paper under Paper -- lint: disable=BRM009\n"
        pragmas = parse_pragmas(source)
        assert pragmas.is_suppressed("BRM009", "Invited_Paper")
        assert not pragmas.is_suppressed("BRM009", "Program_Paper")
        assert not pragmas.is_suppressed("BRM010", "Invited_Paper")


class TestLintIntegration:
    def test_file_pragma_suppresses_and_is_counted(self, fig6, fig6_result):
        source = to_dsl(fig6) + "\n-- lint: disable=BRM009\n"
        report = lint_schema(fig6, result=fig6_result, source=source)
        assert "BRM009" not in {d.code for d in report.diagnostics}
        assert report.suppressed >= 1

    def test_trailing_pragma_suppresses_the_annotated_subtype(
        self, fig6, fig6_result
    ):
        lines = to_dsl(fig6).splitlines()
        annotated = [
            line + "  -- lint: disable=BRM009"
            if line.split() and "Invited_Paper" in line.split()
            else line
            for line in lines
        ]
        source = "\n".join(annotated) + "\n"
        assert source != to_dsl(fig6) + "\n"
        report = lint_schema(fig6, result=fig6_result, source=source)
        assert "BRM009" not in {d.code for d in report.diagnostics}
        assert report.suppressed >= 1

    def test_unsuppressed_source_reports_brm009(self, fig6, fig6_result):
        report = lint_schema(
            fig6, result=fig6_result, source=to_dsl(fig6)
        )
        assert "BRM009" in {d.code for d in report.diagnostics}
        assert report.suppressed == 0

    def test_unknown_pragma_code_is_rejected(self, fig6, fig6_result):
        source = to_dsl(fig6) + "\n-- lint: disable=XYZ999\n"
        with pytest.raises(ValueError, match="unknown lint code"):
            lint_schema(fig6, result=fig6_result, source=source)
