"""``BRM0xx`` schema-smell rules, ported and new."""

from repro.analyzer import analyze
from repro.brm.builder import SchemaBuilder
from repro.brm.datatypes import char
from repro.brm.sublinks import SublinkType
from repro.lint import LEGACY_CODES, lint_schema
from repro.lint.rules_schema import LEGACY_CODES as MODULE_LEGACY_CODES


def find(report, code):
    return [d for d in report.diagnostics if d.code == code]


class TestPortedAnalyzerRules:
    def test_fig6_reports_indistinct_subtype_as_brm009(self, fig6):
        report = lint_schema(fig6, select=["BRM"])
        findings = find(report, "BRM009")
        assert [d.subject for d in findings] == ["Invited_Paper"]
        assert report.is_clean

    def test_reference_schemes_surface_as_brm014_infos(self, fig6):
        report = lint_schema(fig6, select=["BRM014"])
        assert report.diagnostics
        assert all(d.severity.value == "info" for d in report.diagnostics)

    def test_every_analyzer_finding_is_ported(self, fig6):
        analysis = analyze(fig6)
        report = lint_schema(fig6, select=["BRM"])
        ported = {
            (LEGACY_CODES[d.code], d.subject)
            for d in analysis.diagnostics
        }
        new_rules = {"BRM015", "BRM016", "BRM017"}
        assert {
            (d.code, d.subject)
            for d in report.diagnostics
            if d.code not in new_rules
        } == ported

    def test_analysis_report_shim_matches_lint_codes(self, fig6):
        shimmed = analyze(fig6).lint_diagnostics()
        assert shimmed, "shim produced nothing"
        for diagnostic in shimmed:
            assert diagnostic.code.startswith("BRM")
        report = lint_schema(fig6, select=["BRM"])
        new_rules = {"BRM015", "BRM016", "BRM017"}
        assert [
            d for d in report.diagnostics if d.code not in new_rules
        ] == shimmed

    def test_legacy_code_table_is_exported(self):
        assert LEGACY_CODES is MODULE_LEGACY_CODES
        assert LEGACY_CODES["INDISTINCT_SUBTYPE"] == "BRM009"


def _chain_schema():
    """A IS B IS C with a redundant direct sublink A IS C."""
    builder = SchemaBuilder("Chained")
    builder.lot("K", char(4))
    for name in ("A", "B", "C"):
        builder.nolot(name)
    builder.identifier("C", "K")
    builder.subtype("B", "C")
    builder.subtype("A", "B")
    schema = builder.build()
    schema.add_sublink(SublinkType("A_IS_C_direct", "A", "C"))
    return schema


def _parallel_subset_schema():
    """leads <= helps <= works plus the implied direct leads <= works."""
    builder = SchemaBuilder("Parallel")
    builder.lot("Name", char(10))
    builder.nolot("P")
    builder.identifier("P", "Name")
    for fact, role in (
        ("works", "works_on"),
        ("helps", "helps_on"),
        ("leads", "leads_on"),
    ):
        builder.fact(
            fact, ("P", role), ("Name", f"of_{fact}"), unique="first"
        )
    builder.subset(("leads", "leads_on"), ("helps", "helps_on"), name="S_ab")
    builder.subset(("helps", "helps_on"), ("works", "works_on"), name="S_bc")
    builder.subset(("leads", "leads_on"), ("works", "works_on"), name="S_ac")
    return builder.build()


class TestNewSchemaRules:
    def test_transitive_sublink_detected(self):
        report = lint_schema(_chain_schema(), select=["BRM016"])
        assert [d.subject for d in report.diagnostics] == ["A_IS_C_direct"]

    def test_clean_hierarchy_has_no_transitive_sublinks(self, fig6):
        report = lint_schema(fig6, select=["BRM016"])
        assert report.diagnostics == []

    def test_redundant_subset_detected(self):
        report = lint_schema(_parallel_subset_schema(), select=["BRM017"])
        assert [d.subject for d in report.diagnostics] == ["S_ac"]

    def test_no_redundant_subsets_in_paper_schemas(self, fig6, cris):
        for schema in (fig6, cris):
            report = lint_schema(schema, select=["BRM017"])
            assert report.diagnostics == []
