"""Shared fixtures for the lint suite."""

import pytest

from repro.cris import cris_schema, figure6_schema
from repro.mapper import MappingOptions, map_schema


@pytest.fixture(scope="session")
def fig6():
    return figure6_schema()


@pytest.fixture(scope="session")
def fig6_result(fig6):
    return map_schema(fig6, MappingOptions())


@pytest.fixture(scope="session")
def cris():
    return cris_schema()


@pytest.fixture(scope="session")
def cris_result(cris):
    return map_schema(cris, MappingOptions())
