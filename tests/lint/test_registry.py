"""Diagnostic-code hygiene: the registry meta-test.

Every registered rule must carry a unique well-formed code, a
docstring-derived summary, a severity, and a row in the rule
catalogue of ``docs/LINTING.md`` — an undocumented rule fails here.
"""

import re
from pathlib import Path

import pytest

from repro.analyzer.diagnostics import Severity
from repro.lint import REGISTRY, all_rules, resolve_selectors

DOCS = Path(__file__).resolve().parents[2] / "docs" / "LINTING.md"

CODE_SHAPE = re.compile(r"^(BRM0|TRC1|SQL2|MAP3|IMP4)\d\d$")
SLUG_SHAPE = re.compile(r"^[a-z][a-z0-9]*(-[a-z0-9]+)*$")


def test_registry_is_populated():
    assert len(all_rules()) >= 25


def test_codes_are_unique_and_well_formed():
    rules = all_rules()
    codes = [rule.code for rule in rules]
    assert len(set(codes)) == len(codes)
    for rule in rules:
        assert CODE_SHAPE.match(rule.code), rule.code


def test_every_rule_has_slug_severity_summary_and_docstring():
    for rule in all_rules():
        assert SLUG_SHAPE.match(rule.slug), rule.code
        assert isinstance(rule.severity, Severity), rule.code
        assert rule.summary.strip(), rule.code
        assert rule.check.__doc__ and rule.check.__doc__.strip(), rule.code


def test_slugs_are_unique():
    slugs = [rule.slug for rule in all_rules()]
    assert len(set(slugs)) == len(slugs)


def test_artifact_matches_code_prefix():
    families = {
        "BRM": "schema",
        "TRC": "trace",
        "SQL": "sql",
        "MAP": "map",
        "IMP": "schema",
    }
    for rule in all_rules():
        assert rule.artifact == families[rule.code[:3]], rule.code


def test_every_rule_is_documented_in_the_catalogue():
    table = DOCS.read_text()
    undocumented = [
        rule.code
        for rule in all_rules()
        if f"| {rule.code} " not in table
    ]
    assert not undocumented, (
        f"rules missing from docs/LINTING.md: {undocumented}"
    )


def test_docs_table_rows_match_registry_metadata():
    text = DOCS.read_text()
    for rule in all_rules():
        row = next(
            line for line in text.splitlines() if f"| {rule.code} " in line
        )
        assert rule.slug in row, rule.code
        assert rule.severity.value in row, rule.code


def test_selector_resolution_expands_prefixes():
    assert resolve_selectors(["BRM009"]) == frozenset({"BRM009"})
    family = resolve_selectors(["TRC"])
    assert family == {c for c in REGISTRY if c.startswith("TRC")}
    with pytest.raises(ValueError, match="unknown lint code"):
        resolve_selectors(["XYZ999"])
