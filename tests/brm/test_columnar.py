"""Columnar population vs. the row-oriented oracle.

``ColumnarPopulation`` is the interned, per-fact-type columnar layout
the batch state-map kernels run on; ``Population`` is the retained
value-oriented reference.  Mirroring the ``LinearScanOracle`` pattern
from ``test_indexes.py``, every observable query — validity (exact
violation messages), ``facts_of``, role/item populations, equality —
is replayed through both representations after hypothesis-driven
construction and randomized mutation sequences, and the lossless
conversions ``from_population``/``to_population`` must round-trip.
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.brm import ColumnarPopulation, Population, RoleId
from repro.cris import figure6_population, figure6_schema
from repro.mapper import MappingOptions, NullPolicy, SublinkPolicy, map_schema
from repro.workloads import generate_population, generate_schema

from tests.strategies import (
    DEFAULT_SHAPE,
    FULL_SHAPE,
    PLAIN_SHAPE,
    RICH_SHAPE,
)


def assert_columnar_equals_oracle(
    population: Population, columnar: ColumnarPopulation
) -> None:
    """Every observable query agrees between both representations."""
    schema = population.schema
    # Validity: same verdict AND the same violation messages.
    assert sorted(str(v) for v in columnar.check()) == sorted(
        str(v) for v in population.check()
    )
    assert columnar.is_valid() == population.is_valid()
    for object_type in schema.object_types:
        name = object_type.name
        assert columnar.instances(name) == population.instances(name)
    for fact in schema.fact_types:
        assert columnar.fact_instances(fact.name) == population.fact_instances(
            fact.name
        )
        for role in (fact.first, fact.second):
            role_id = RoleId(fact.name, role.name)
            assert columnar.role_population(role_id) == population.role_population(
                role_id
            )
            assert columnar.role_occurrences(
                role_id
            ) == population.role_occurrences(role_id)
            for instance in population.role_population(role_id):
                assert columnar.facts_of(
                    fact.name, role.name, instance
                ) == population.facts_of(fact.name, role.name, instance)
    assert columnar.is_empty() == population.is_empty()
    assert columnar.as_dict() == population.as_dict()
    assert columnar == population
    # Lossless conversion both ways.
    assert columnar.to_population() == population
    assert ColumnarPopulation.from_population(population) == columnar


def _sync_pair(schema, seed: int) -> tuple[Population, ColumnarPopulation]:
    population = generate_population(schema, instances_per_type=4, seed=seed)
    return population, ColumnarPopulation.from_population(population)


def _random_mutation(
    population: Population,
    columnar: ColumnarPopulation,
    rng: random.Random,
    step: int,
) -> None:
    """Apply one mutation through BOTH public mutator APIs.

    Mutations deliberately include constraint-violating ones (stray
    facts, retracted references, dangling subtype members): the
    equivalence contract covers invalid states and their exact
    violation messages, not just models.
    """
    schema = population.schema
    facts = [f for f in schema.fact_types]
    choice = rng.randrange(4)
    if choice == 0 and facts:
        fact = rng.choice(facts)
        first = f"mut_{step}_a"
        second = f"mut_{step}_b"
        population.add_fact(fact.name, first, second)
        columnar.add_fact(fact.name, first, second)
    elif choice == 1:
        populated = [
            f for f in facts if population.fact_instances(f.name)
        ]
        if populated:
            fact = rng.choice(populated)
            pair = min(population.fact_instances(fact.name), key=repr)
            population.remove_fact(fact.name, *pair)
            columnar.remove_fact(fact.name, *pair)
    elif choice == 2:
        types = [
            t.name
            for t in schema.object_types
            if population.instances(t.name)
        ]
        if types:
            name = rng.choice(types)
            instance = min(population.instances(name), key=repr)
            population.discard_instance(name, instance)
            columnar.discard_instance(name, instance)
    else:
        name = rng.choice([t.name for t in schema.object_types])
        population.add_instance(name, f"mut_{step}_solo")
        columnar.add_instance(name, f"mut_{step}_solo")


class TestOracleEquivalence:
    def test_figure6_population(self):
        schema = figure6_schema()
        population = figure6_population(schema)
        assert_columnar_equals_oracle(
            population, ColumnarPopulation.from_population(population)
        )

    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        schema_seed=st.integers(min_value=0, max_value=40),
        population_seed=st.integers(min_value=0, max_value=40),
    )
    def test_generated_populations(self, schema_seed, population_seed):
        schema = generate_schema(FULL_SHAPE, seed=schema_seed)
        population, columnar = _sync_pair(schema, population_seed)
        assert_columnar_equals_oracle(population, columnar)

    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(seed=st.integers(min_value=0, max_value=30))
    def test_equivalence_after_randomized_mutations(self, seed):
        rng = random.Random(seed)
        schema = generate_schema(RICH_SHAPE, seed=seed)
        population, columnar = _sync_pair(schema, seed)
        for step in range(15):
            _random_mutation(population, columnar, rng, step)
            assert_columnar_equals_oracle(population, columnar)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=40))
    def test_round_trip_is_lossless(self, seed):
        schema = generate_schema(PLAIN_SHAPE, seed=seed)
        population, columnar = _sync_pair(schema, seed)
        rebuilt = columnar.to_population()
        assert rebuilt == population
        assert rebuilt.as_dict() == population.as_dict()
        # And back again.
        assert ColumnarPopulation.from_population(rebuilt) == columnar

    def test_copy_is_independent(self):
        schema = figure6_schema()
        columnar = ColumnarPopulation.from_population(
            figure6_population(schema)
        )
        twin = columnar.copy()
        assert twin == columnar
        twin.add_instance("Paper", "ghost_paper")
        assert twin != columnar


class TestStateMapEquivalence:
    """The batch kernels accept either representation and agree."""

    POLICIES = st.tuples(
        st.sampled_from(
            [NullPolicy.DEFAULT, NullPolicy.NOT_ALLOWED, NullPolicy.NOT_IN_KEYS]
        ),
        st.sampled_from(
            [
                SublinkPolicy.SEPARATE,
                SublinkPolicy.TOGETHER,
                SublinkPolicy.INDICATOR,
            ]
        ),
    )

    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(min_value=0, max_value=30),
        policies=POLICIES,
    )
    def test_forward_map_agrees_across_representations(self, seed, policies):
        null_policy, sublink_policy = policies
        schema = generate_schema(DEFAULT_SHAPE, seed=seed)
        population = generate_population(
            schema, instances_per_type=4, seed=seed
        )
        result = map_schema(
            schema,
            MappingOptions(
                null_policy=null_policy, sublink_policy=sublink_policy
            ),
        )
        canonical = result.canonicalize(result.state.to_canonical(population))
        columnar = ColumnarPopulation.from_population(canonical)
        from_rows = result.state_map.forward(canonical)
        from_columns = result.state_map.forward(columnar)
        assert from_rows == from_columns
        # State equivalence holds for the reconstruction against both.
        reconstructed = result.state_map.backward(from_columns)
        assert reconstructed == canonical
        assert columnar == reconstructed


class TestIdLevelPrimitives:
    """The bulk id-level construction API the backward map runs on."""

    def _columnar(self):
        return ColumnarPopulation(figure6_schema())

    def test_intern_all_is_per_value_intern(self):
        columnar = self._columnar()
        column = ["a", "b", "a", "c", "b"]
        ids = columnar.intern_all(column)
        assert ids == [columnar.intern(v) for v in column]
        assert ids[0] == ids[2] and ids[1] == ids[4]

    def test_add_instance_ids_propagates_to_ancestors(self):
        columnar = self._columnar()
        ids = columnar.intern_all(["inv_1", "inv_2"])
        columnar.add_instance_ids("Invited_Paper", set(ids))
        assert columnar.instances("Invited_Paper") == {"inv_1", "inv_2"}
        # Invited_Paper IS-A Paper: extensional subtyping by construction.
        assert columnar.instances("Paper") >= {"inv_1", "inv_2"}

    def test_add_pair_ids_matches_add_facts(self):
        schema = figure6_schema()
        by_values = ColumnarPopulation(schema)
        by_ids = ColumnarPopulation(schema)
        pairs = [("p_1", "alice"), ("p_2", "bob"), ("p_3", "alice")]
        by_values.add_facts("presents", pairs)
        by_ids.add_pair_ids(
            "presents",
            [
                (by_ids.intern(first), by_ids.intern(second))
                for first, second in pairs
            ],
        )
        assert by_ids == by_values
        assert by_ids.state_diff(by_values) == {}

    def test_add_fact_id_columns_matches_add_facts(self):
        schema = figure6_schema()
        by_values = ColumnarPopulation(schema)
        by_columns = ColumnarPopulation(schema)
        pairs = [("p_1", "alice"), ("p_2", "bob")]
        by_values.add_facts("presents", pairs)
        by_columns.add_fact_id_columns(
            "presents",
            by_columns.intern_all([first for first, _ in pairs]),
            by_columns.intern_all([second for _, second in pairs]),
        )
        assert by_columns == by_values
        # Empty columns are a no-op, not a version bump.
        before = by_columns._version
        by_columns.add_fact_id_columns("presents", [], [])
        assert by_columns._version == before


class TestStateDiff:
    """Columnar set-algebra comparison across intern spaces."""

    def test_empty_iff_equal(self):
        schema = figure6_schema()
        population = figure6_population(schema)
        columnar = ColumnarPopulation.from_population(population)
        # Different intern orders, same state.
        twin = ColumnarPopulation(schema)
        for fact in reversed(schema.fact_types):
            twin.add_facts(
                fact.name, sorted(population.fact_instances(fact.name))
            )
        for object_type in schema.object_types:
            twin.add_instances(
                object_type.name, population.instances(object_type.name)
            )
        assert twin.state_diff(columnar) == {}
        assert columnar.state_diff(twin) == {}
        assert twin.state_diff(population) == {}

    def test_counts_symmetric_differences(self):
        schema = figure6_schema()
        left = ColumnarPopulation(schema)
        right = ColumnarPopulation(schema)
        left.add_instances("Person", ["alice", "bob"])
        right.add_instances("Person", ["alice", "carol"])
        right.add_fact("presents", "p_9", "carol")
        diff = left.state_diff(right)
        assert diff["Person"] == 2  # bob only-left, carol only-right
        assert diff["presents"] == 1
        assert diff["Program_Paper"] == 1  # p_9 auto-added on the right

    def test_never_interned_values_always_differ(self):
        # The negative-sentinel path: a value the other side has never
        # seen must count as a difference even when id numbers collide.
        schema = figure6_schema()
        left = ColumnarPopulation(schema)
        right = ColumnarPopulation(schema)
        left.add_instance("Person", "only_left")
        right.add_instance("Person", "only_right")
        assert left.state_diff(right) == {"Person": 2}
