"""Tests for LOT data types."""

import pytest

from repro.brm import DataType, DataTypeKind, char, date, integer, numeric
from repro.brm.datatypes import boolean, real, smallint, varchar


class TestConstruction:
    def test_char_requires_length(self):
        with pytest.raises(ValueError):
            DataType(DataTypeKind.CHAR)

    def test_char_rejects_nonpositive_length(self):
        with pytest.raises(ValueError):
            char(0)

    def test_integer_rejects_length(self):
        with pytest.raises(ValueError):
            DataType(DataTypeKind.INTEGER, 4)

    def test_scale_only_for_numeric(self):
        with pytest.raises(ValueError):
            DataType(DataTypeKind.CHAR, 10, 2)

    def test_numeric_with_scale(self):
        assert numeric(7, 2).scale == 2


class TestRendering:
    def test_char_render(self):
        assert char(30).render() == "CHAR(30)"

    def test_varchar_render(self):
        assert varchar(12).render() == "VARCHAR(12)"

    def test_numeric_render_without_scale(self):
        assert numeric(3).render() == "NUMERIC(3)"

    def test_numeric_render_with_scale(self):
        assert numeric(7, 2).render() == "NUMERIC(7,2)"

    def test_plain_kinds_render_bare(self):
        assert integer().render() == "INTEGER"
        assert date().render() == "DATE"


class TestPhysicalSize:
    def test_char_size_is_length(self):
        assert char(30).physical_size == 30

    def test_numeric_is_packed(self):
        assert numeric(3).physical_size == 2  # 3 digits -> 2 bytes

    def test_fixed_sizes(self):
        assert integer().physical_size == 4
        assert smallint().physical_size == 2
        assert real().physical_size == 8
        assert boolean().physical_size == 1

    def test_size_orders_representations(self):
        # A NUMERIC(3) id is "smaller" than a CHAR(30) name; the mapper
        # relies on this ordering for the default lexical choice.
        assert numeric(3).physical_size < char(30).physical_size


class TestValueSemantics:
    def test_equality(self):
        assert char(6) == char(6)
        assert char(6) != char(7)

    def test_hashable(self):
        assert len({char(6), char(6), numeric(3)}) == 2
