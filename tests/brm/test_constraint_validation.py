"""Property sweep over constraint ``__post_init__`` validation edges.

Every constraint kind is driven across well-formed and malformed
field combinations: malformed fields must raise ``ConstraintError``
at construction, well-formed ones must round-trip their items
through ``items_of``.  The two PR-9 satellite fixes get explicit
regressions: ``ValueConstraint`` dedupes duplicate values preserving
order, and ``FrequencyConstraint`` accepts the ``(0, 0)`` "never
plays" bound while still rejecting genuinely empty intervals.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.brm import (
    EqualityConstraint,
    ExclusionConstraint,
    FrequencyConstraint,
    RoleId,
    SublinkRef,
    SubsetConstraint,
    TotalUnionConstraint,
    UniquenessConstraint,
    ValueConstraint,
    items_of,
)
from repro.errors import ConstraintError

names = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz_", min_size=1, max_size=8
)
role_ids = st.builds(RoleId, fact=names, role=names)
sublink_refs = st.builds(SublinkRef, sublink=names)
items = st.one_of(role_ids, sublink_refs)


class TestEveryKindRejectsBlankName:
    @given(role=role_ids)
    def test_blank_names_raise(self, role):
        for build in (
            lambda: UniquenessConstraint("", roles=(role,)),
            lambda: TotalUnionConstraint(
                "", object_type="T", items=(role,)
            ),
            lambda: ExclusionConstraint(
                "", items=(role, RoleId("other", "r"))
            ),
            lambda: SubsetConstraint(
                "", subset=role, superset=RoleId("other", "r")
            ),
            lambda: EqualityConstraint(
                "", items=(role, RoleId("other", "r"))
            ),
            lambda: FrequencyConstraint("", role=role),
            lambda: ValueConstraint("", object_type="T", values=("a",)),
        ):
            with pytest.raises(ConstraintError):
                build()


class TestUniquenessEdges:
    def test_no_roles_raises(self):
        with pytest.raises(ConstraintError):
            UniquenessConstraint("U")

    @given(roles=st.lists(role_ids, min_size=1, max_size=4, unique=True))
    def test_well_formed_round_trips(self, roles):
        constraint = UniquenessConstraint("U", roles=tuple(roles))
        assert items_of(constraint) == tuple(roles)

    @given(role=role_ids)
    def test_duplicate_roles_raise(self, role):
        with pytest.raises(ConstraintError):
            UniquenessConstraint("U", roles=(role, role))


class TestSetAlgebraicEdges:
    @given(item=items)
    def test_exclusion_needs_two_distinct_items(self, item):
        with pytest.raises(ConstraintError):
            ExclusionConstraint("X", items=(item,))
        with pytest.raises(ConstraintError):
            ExclusionConstraint("X", items=(item, item))

    @given(item=items)
    def test_equality_needs_two_distinct_items(self, item):
        with pytest.raises(ConstraintError):
            EqualityConstraint("E", items=(item,))
        with pytest.raises(ConstraintError):
            EqualityConstraint("E", items=(item, item))

    @given(item=items)
    def test_subset_rejects_reflexive_pair(self, item):
        with pytest.raises(ConstraintError):
            SubsetConstraint("S", subset=item, superset=item)

    @given(pair=st.lists(items, min_size=2, max_size=2, unique=True))
    def test_well_formed_pairs_round_trip(self, pair):
        first, second = pair
        assert items_of(
            ExclusionConstraint("X", items=(first, second))
        ) == (first, second)
        assert items_of(
            EqualityConstraint("E", items=(first, second))
        ) == (first, second)
        assert items_of(
            SubsetConstraint("S", subset=first, superset=second)
        ) == (first, second)

    @given(
        object_type=names,
        members=st.lists(items, min_size=1, max_size=4, unique=True),
    )
    def test_total_union_round_trips(self, object_type, members):
        constraint = TotalUnionConstraint(
            "T", object_type=object_type, items=tuple(members)
        )
        assert items_of(constraint) == tuple(members)

    def test_total_union_needs_object_type_and_items(self):
        with pytest.raises(ConstraintError):
            TotalUnionConstraint("T", object_type="", items=(R1,))
        with pytest.raises(ConstraintError):
            TotalUnionConstraint("T", object_type="P", items=())


R1 = RoleId("f1", "a")


class TestFrequencyEdges:
    @given(
        role=role_ids,
        minimum=st.integers(min_value=0, max_value=50),
        span=st.one_of(st.none(), st.integers(min_value=0, max_value=50)),
    )
    def test_any_nonempty_interval_is_accepted(self, role, minimum, span):
        maximum = None if span is None else minimum + span
        constraint = FrequencyConstraint(
            "F", role=role, minimum=minimum, maximum=maximum
        )
        assert items_of(constraint) == (role,)

    @given(
        role=role_ids,
        maximum=st.integers(min_value=0, max_value=50),
        gap=st.integers(min_value=1, max_value=50),
    )
    def test_empty_intervals_raise(self, role, maximum, gap):
        with pytest.raises(ConstraintError):
            FrequencyConstraint(
                "F", role=role, minimum=maximum + gap, maximum=maximum
            )

    @given(role=role_ids, minimum=st.integers(max_value=-1))
    def test_negative_minimum_raises(self, role, minimum):
        with pytest.raises(ConstraintError):
            FrequencyConstraint("F", role=role, minimum=minimum)

    def test_missing_role_raises(self):
        with pytest.raises(ConstraintError):
            FrequencyConstraint("F", minimum=1)

    def test_never_plays_bound_is_legal(self):
        # Regression: (0, 0) used to be rejected by the over-strict
        # ``maximum >= max(minimum, 1)`` check.
        constraint = FrequencyConstraint(
            "F", role=R1, minimum=0, maximum=0
        )
        assert constraint.minimum == 0
        assert constraint.maximum == 0


class TestValueEdges:
    @given(
        object_type=names,
        values=st.lists(
            st.text(max_size=4), min_size=1, max_size=6, unique=True
        ),
    )
    def test_well_formed_keeps_values_in_order(self, object_type, values):
        constraint = ValueConstraint(
            "V", object_type=object_type, values=tuple(values)
        )
        assert constraint.values == tuple(values)

    def test_missing_object_type_or_values_raise(self):
        with pytest.raises(ConstraintError):
            ValueConstraint("V", object_type="", values=("a",))
        with pytest.raises(ConstraintError):
            ValueConstraint("V", object_type="T", values=())

    def test_duplicate_values_dedupe_preserving_order(self):
        # Regression: duplicates used to be silently kept, poisoning
        # domain comparisons and SQL IN-lists.
        constraint = ValueConstraint(
            "V", object_type="T", values=("b", "a", "b", "c", "a")
        )
        assert constraint.values == ("b", "a", "c")

    @given(
        values=st.lists(
            st.text(max_size=3), min_size=1, max_size=8, unique=True
        )
    )
    def test_doubling_any_value_list_dedupes_back(self, values):
        constraint = ValueConstraint(
            "V", object_type="T", values=tuple(values) + tuple(values)
        )
        assert constraint.values == tuple(values)
