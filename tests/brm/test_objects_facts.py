"""Tests for object types, roles and fact types."""

import pytest

from repro.brm import FactType, ObjectKind, Role, RoleId, char, lot, lot_nolot, nolot


class TestObjectTypes:
    def test_lot_is_lexical(self):
        paper_id = lot("Paper_Id", char(6))
        assert paper_id.kind is ObjectKind.LOT
        assert paper_id.is_lexical
        assert not paper_id.is_nolot

    def test_nolot_is_not_lexical(self):
        paper = nolot("Paper")
        assert paper.is_nolot
        assert not paper.is_lexical
        assert paper.datatype is None

    def test_lot_nolot_is_both(self):
        person = lot_nolot("Person", char(30))
        assert person.is_lexical
        assert not person.is_nolot
        assert person.datatype == char(30)

    def test_nolot_rejects_datatype(self):
        from repro.brm.objects import ObjectType

        with pytest.raises(ValueError):
            ObjectType("Paper", ObjectKind.NOLOT, char(6))

    def test_lot_requires_datatype(self):
        from repro.brm.objects import ObjectType

        with pytest.raises(ValueError):
            ObjectType("Paper_Id", ObjectKind.LOT)

    def test_name_must_be_identifierish(self):
        with pytest.raises(ValueError):
            nolot("")
        with pytest.raises(ValueError):
            nolot("has space")


class TestRoles:
    def test_role_requires_name_and_player(self):
        with pytest.raises(ValueError):
            Role("", "Paper")
        with pytest.raises(ValueError):
            Role("with", "")

    def test_role_id_str(self):
        assert str(RoleId("presents", "presented_by")) == "presents.presented_by"


class TestFactTypes:
    @pytest.fixture
    def presents(self):
        return FactType(
            "presents", Role("presented_by", "Program_Paper"), Role("presenting", "Person")
        )

    def test_roles_and_players(self, presents):
        assert presents.players == ("Program_Paper", "Person")
        assert [r.name for r in presents.roles] == ["presented_by", "presenting"]

    def test_role_ids(self, presents):
        assert presents.role_ids == (
            RoleId("presents", "presented_by"),
            RoleId("presents", "presenting"),
        )

    def test_role_lookup(self, presents):
        assert presents.role("presenting").player == "Person"
        with pytest.raises(KeyError):
            presents.role("nope")

    def test_co_role(self, presents):
        assert presents.co_role("presented_by").name == "presenting"
        assert presents.co_role("presenting").name == "presented_by"

    def test_position_of(self, presents):
        assert presents.position_of("presented_by") == 0
        assert presents.position_of("presenting") == 1

    def test_ring_fact(self):
        supervises = FactType(
            "supervises", Role("boss_of", "Person"), Role("reports_to", "Person")
        )
        assert supervises.is_ring
        assert not FactType(
            "has", Role("with", "Paper"), Role("of", "Title")
        ).is_ring

    def test_duplicate_role_names_rejected(self):
        with pytest.raises(ValueError):
            FactType("bad", Role("r", "A"), Role("r", "B"))
