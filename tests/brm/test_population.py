"""Tests for populations as models of a binary schema."""

import pytest

from repro.brm import Population, RoleId, SchemaBuilder, SublinkRef, char, numeric
from repro.errors import PopulationError


@pytest.fixture
def schema():
    b = SchemaBuilder("conf")
    b.nolot("Paper").nolot("Program_Paper")
    b.lot("Paper_Id", char(6)).lot_nolot("Session", numeric(3))
    b.identifier("Paper", "Paper_Id", fact="has_id")
    b.subtype("Program_Paper", "Paper")
    b.fact(
        "scheduled",
        ("Program_Paper", "presented_during"),
        ("Session", "comprising"),
        unique="first",
        total="first",
    )
    return b.build()


class TestConstruction:
    def test_add_instance_propagates_to_supertypes(self, schema):
        pop = Population(schema)
        pop.add_instance("Program_Paper", "p1")
        assert "p1" in pop.instances("Paper")

    def test_add_fact_adds_players(self, schema):
        pop = Population(schema)
        pop.add_fact("scheduled", "p1", 12)
        assert "p1" in pop.instances("Program_Paper")
        assert "p1" in pop.instances("Paper")
        assert 12 in pop.instances("Session")

    def test_unknown_type_rejected(self, schema):
        pop = Population(schema)
        with pytest.raises(PopulationError):
            pop.add_instance("Nope", "x")

    def test_unknown_fact_rejected(self, schema):
        pop = Population(schema)
        with pytest.raises(PopulationError):
            pop.add_fact("nope", "a", "b")

    def test_remove_fact(self, schema):
        pop = Population(schema)
        pop.add_fact("scheduled", "p1", 12)
        pop.remove_fact("scheduled", "p1", 12)
        assert not pop.fact_instances("scheduled")
        with pytest.raises(PopulationError):
            pop.remove_fact("scheduled", "p1", 12)


class TestAccess:
    def test_role_population(self, schema):
        pop = Population(schema)
        pop.add_fact("scheduled", "p1", 12)
        pop.add_fact("scheduled", "p2", 12)
        assert pop.role_population(RoleId("scheduled", "presented_during")) == {
            "p1",
            "p2",
        }
        assert pop.role_population(RoleId("scheduled", "comprising")) == {12}

    def test_role_occurrences(self, schema):
        pop = Population(schema)
        pop.add_fact("scheduled", "p1", 12)
        pop.add_fact("scheduled", "p2", 12)
        occurrences = pop.role_occurrences(RoleId("scheduled", "comprising"))
        assert occurrences == {12: 2}

    def test_item_population_for_sublink(self, schema):
        pop = Population(schema)
        pop.add_instance("Program_Paper", "p1")
        pop.add_instance("Paper", "p2")
        assert pop.item_population(SublinkRef("Program_Paper_IS_Paper")) == {"p1"}

    def test_facts_of(self, schema):
        pop = Population(schema)
        pop.add_fact("scheduled", "p1", 12)
        assert pop.facts_of("scheduled", "presented_during", "p1") == {12}
        assert pop.facts_of("scheduled", "comprising", 12) == {"p1"}

    def test_is_empty(self, schema):
        pop = Population(schema)
        assert pop.is_empty()
        pop.add_instance("Paper", "p")
        assert not pop.is_empty()


class TestConstraintChecking:
    def _valid_pop(self, schema):
        pop = Population(schema)
        pop.add_fact("has_id", "p1", "ID1")
        pop.add_fact("has_id", "p2", "ID2")
        pop.add_instance("Program_Paper", "p1")
        pop.add_fact("scheduled", "p1", 12)
        return pop

    def test_valid_population(self, schema):
        assert self._valid_pop(schema).is_valid()

    def test_uniqueness_violation(self, schema):
        pop = self._valid_pop(schema)
        pop.add_fact("has_id", "p1", "ID9")  # p1 now has two ids
        rules = {v.rule for v in pop.check()}
        assert any(rule.startswith("U") for rule in rules)

    def test_lot_side_uniqueness_violation(self, schema):
        pop = self._valid_pop(schema)
        pop.add_fact("has_id", "p3", "ID1")  # ID1 names two papers
        # p3 is not a Program_Paper, so totality on scheduled is fine,
        # but the id must still be violated.
        assert not pop.is_valid()

    def test_total_role_violation(self, schema):
        pop = self._valid_pop(schema)
        pop.add_instance("Program_Paper", "p2")  # p2 never scheduled
        messages = [str(v) for v in pop.check()]
        assert any("plays none of the required roles" in m for m in messages)

    def test_validate_raises_with_summary(self, schema):
        pop = Population(schema)
        pop.add_instance("Paper", "p1")  # no id -> total role violated
        with pytest.raises(PopulationError):
            pop.validate()


class TestSetAlgebraicChecking:
    @pytest.fixture
    def schema(self):
        b = SchemaBuilder("s")
        b.nolot("Paper").nolot("Invited").nolot("Rejected")
        b.subtype("Invited", "Paper").subtype("Rejected", "Paper")
        b.exclusion(SublinkRef("Invited_IS_Paper"), SublinkRef("Rejected_IS_Paper"))
        return b.build()

    def test_exclusion_between_subtypes(self, schema):
        pop = Population(schema)
        pop.add_instance("Invited", "p1")
        pop.add_instance("Rejected", "p1")
        assert any("mutually exclusive" in str(v) for v in pop.check())

    def test_disjoint_subtypes_are_fine(self, schema):
        pop = Population(schema)
        pop.add_instance("Invited", "p1")
        pop.add_instance("Rejected", "p2")
        assert pop.is_valid()

    def test_subset_constraint(self):
        b = SchemaBuilder("s")
        b.nolot("Person").lot("Name", char(20)).lot("Nick", char(20))
        b.attribute("Person", "Name", fact="named")
        b.attribute("Person", "Nick", fact="nicked")
        b.subset(("nicked", "with"), ("named", "with"))
        schema = b.build()
        pop = Population(schema)
        pop.add_fact("nicked", "x", "shorty")
        assert any("populates" in str(v) for v in pop.check())
        pop.add_fact("named", "x", "Alexander")
        assert pop.is_valid()

    def test_equality_constraint(self):
        b = SchemaBuilder("s")
        b.nolot("PP").lot_nolot("Session", numeric(3)).lot_nolot("Person", char(30))
        b.attribute("PP", "Session", fact="during")
        b.attribute("PP", "Person", fact="by")
        b.equality(("during", "with"), ("by", "with"))
        schema = b.build()
        pop = Population(schema)
        pop.add_fact("during", "p1", 1)
        assert not pop.is_valid()
        pop.add_fact("by", "p1", "Alice")
        assert pop.is_valid()

    def test_conformance_detects_stray_subtype_member(self):
        b = SchemaBuilder("s")
        b.nolot("A").nolot("B")
        b.subtype("B", "A")
        schema = b.build()
        pop = Population(schema)
        pop._objects["B"].add("x")  # bypass propagation deliberately
        assert any(v.rule == "conformance" for v in pop.check())


class TestFrequencyAndExternalUniqueness:
    def test_frequency(self):
        b = SchemaBuilder("s")
        b.nolot("Committee").lot_nolot("Person", char(30))
        b.fact("member", ("Committee", "having"), ("Person", "serving_on"))
        b.frequency(("member", "having"), 2, 3)
        schema = b.build()
        pop = Population(schema)
        pop.add_fact("member", "c1", "alice")
        assert not pop.is_valid()  # only 1 member, needs 2..3
        pop.add_fact("member", "c1", "bob")
        assert pop.is_valid()
        for name in ("carol", "dave"):
            pop.add_fact("member", "c1", name)
        assert not pop.is_valid()  # 4 members

    def test_external_uniqueness(self):
        b = SchemaBuilder("s")
        b.nolot("Building").lot("Street", char(20)).lot("Nr", numeric(4))
        b.attribute("Building", "Street", fact="on", total=True)
        b.attribute("Building", "Nr", fact="at", total=True)
        b.unique(("on", "of"), ("at", "of"))
        schema = b.build()
        pop = Population(schema)
        pop.add_fact("on", "b1", "Main")
        pop.add_fact("at", "b1", 5)
        pop.add_fact("on", "b2", "Main")
        pop.add_fact("at", "b2", 7)
        assert pop.is_valid()
        pop.add_fact("on", "b3", "Main")
        pop.add_fact("at", "b3", 5)  # same (Main, 5) as b1
        assert any("identifies both" in str(v) for v in pop.check())


class TestWholePopulation:
    def test_copy_is_independent(self, schema):
        pop = Population(schema)
        pop.add_fact("has_id", "p1", "ID1")
        duplicate = pop.copy()
        duplicate.add_fact("has_id", "p2", "ID2")
        assert len(pop.fact_instances("has_id")) == 1
        assert len(duplicate.fact_instances("has_id")) == 2

    def test_equality(self, schema):
        pop1 = Population(schema)
        pop2 = Population(schema)
        pop1.add_fact("has_id", "p1", "ID1")
        pop2.add_fact("has_id", "p1", "ID1")
        assert pop1 == pop2
        pop2.add_instance("Paper", "p9")
        assert pop1 != pop2
