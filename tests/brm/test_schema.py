"""Tests for the BinarySchema container and its navigation queries."""

import pytest

from repro.brm import (
    BinarySchema,
    FactType,
    Role,
    RoleId,
    SchemaBuilder,
    SublinkRef,
    SublinkType,
    TotalUnionConstraint,
    UniquenessConstraint,
    char,
    lot,
    nolot,
)
from repro.errors import (
    ConstraintError,
    DuplicateNameError,
    SchemaError,
    UnknownElementError,
)


@pytest.fixture
def schema():
    s = BinarySchema("conference")
    s.add_object_type(nolot("Paper"))
    s.add_object_type(nolot("Program_Paper"))
    s.add_object_type(lot("Paper_Id", char(6)))
    s.add_fact_type(
        FactType("has_id", Role("with", "Paper"), Role("of", "Paper_Id"))
    )
    s.add_sublink(SublinkType("PP_IS_Paper", "Program_Paper", "Paper"))
    return s


class TestAddition:
    def test_duplicate_object_type(self, schema):
        with pytest.raises(DuplicateNameError):
            schema.add_object_type(nolot("Paper"))

    def test_fact_requires_players(self, schema):
        with pytest.raises(UnknownElementError):
            schema.add_fact_type(
                FactType("bad", Role("a", "Paper"), Role("b", "Missing"))
            )

    def test_sublink_rejects_lot_ends(self, schema):
        with pytest.raises(SchemaError):
            schema.add_sublink(SublinkType("bad", "Paper_Id", "Paper"))

    def test_sublink_rejects_cycles(self, schema):
        with pytest.raises(SchemaError):
            schema.add_sublink(SublinkType("cycle", "Paper", "Program_Paper"))

    def test_constraint_requires_known_role(self, schema):
        with pytest.raises(UnknownElementError):
            schema.add_constraint(
                UniquenessConstraint("U1", roles=(RoleId("has_id", "nope"),))
            )

    def test_constraint_requires_known_fact(self, schema):
        with pytest.raises(UnknownElementError):
            schema.add_constraint(
                UniquenessConstraint("U1", roles=(RoleId("nope", "with"),))
            )

    def test_constraint_requires_known_sublink(self, schema):
        with pytest.raises(UnknownElementError):
            schema.add_constraint(
                TotalUnionConstraint(
                    "T1", object_type="Paper", items=(SublinkRef("nope"),)
                )
            )

    def test_total_union_sublink_must_belong_to_type(self, schema):
        schema.add_object_type(nolot("Other"))
        with pytest.raises(ConstraintError):
            schema.add_constraint(
                TotalUnionConstraint(
                    "T1", object_type="Other", items=(SublinkRef("PP_IS_Paper"),)
                )
            )

    def test_total_role_player_must_match(self, schema):
        schema.add_object_type(nolot("Other"))
        with pytest.raises(ConstraintError):
            schema.add_constraint(
                TotalUnionConstraint(
                    "T1", object_type="Other", items=(RoleId("has_id", "with"),)
                )
            )

    def test_total_role_on_supertype_allowed_for_subtype_role(self, schema):
        # A total union on the supertype may range over roles played by
        # a subtype (and vice versa) — the populations are compatible.
        schema.add_fact_type(
            FactType("pp_fact", Role("with", "Program_Paper"), Role("of", "Paper_Id"))
        )
        schema.add_constraint(
            TotalUnionConstraint(
                "T1", object_type="Paper", items=(RoleId("pp_fact", "with"),)
            )
        )


class TestRemoval:
    def test_remove_object_type_in_use(self, schema):
        with pytest.raises(SchemaError):
            schema.remove_object_type("Paper")

    def test_remove_unused_object_type(self, schema):
        schema.add_object_type(nolot("Loose"))
        schema.remove_object_type("Loose")
        assert not schema.has_object_type("Loose")

    def test_remove_fact_with_constraint(self, schema):
        schema.add_constraint(
            UniquenessConstraint("U1", roles=(RoleId("has_id", "with"),))
        )
        with pytest.raises(SchemaError):
            schema.remove_fact_type("has_id")
        schema.remove_constraint("U1")
        schema.remove_fact_type("has_id")
        assert not schema.has_fact_type("has_id")

    def test_remove_sublink_with_constraint(self, schema):
        schema.add_constraint(
            TotalUnionConstraint(
                "T1", object_type="Paper", items=(SublinkRef("PP_IS_Paper"),)
            )
        )
        with pytest.raises(SchemaError):
            schema.remove_sublink("PP_IS_Paper")

    def test_remove_unknown_constraint(self, schema):
        with pytest.raises(UnknownElementError):
            schema.remove_constraint("nope")


class TestNavigation:
    def test_role_resolution(self, schema):
        assert schema.role(RoleId("has_id", "with")).player == "Paper"
        assert schema.player_name(RoleId("has_id", "of")) == "Paper_Id"

    def test_co_role(self, schema):
        assert schema.co_role_id(RoleId("has_id", "with")) == RoleId("has_id", "of")
        assert schema.co_player_name(RoleId("has_id", "with")) == "Paper_Id"

    def test_roles_played_by(self, schema):
        assert schema.roles_played_by("Paper") == [RoleId("has_id", "with")]

    def test_ring_fact_roles_played_by(self):
        s = BinarySchema()
        s.add_object_type(nolot("Person"))
        s.add_fact_type(
            FactType("supervises", Role("boss", "Person"), Role("minion", "Person"))
        )
        assert len(s.roles_played_by("Person")) == 2

    def test_facts_involving(self, schema):
        assert [f.name for f in schema.facts_involving("Paper_Id")] == ["has_id"]

    def test_subtype_navigation(self, schema):
        assert schema.supertypes_of("Program_Paper") == {"Paper"}
        assert schema.subtypes_of("Paper") == {"Program_Paper"}
        assert schema.ancestors_of("Program_Paper") == {"Paper"}
        assert schema.descendants_of("Paper") == {"Program_Paper"}

    def test_deep_subtype_chain(self, schema):
        schema.add_object_type(nolot("Invited_PP"))
        schema.add_sublink(SublinkType("IPP_IS_PP", "Invited_PP", "Program_Paper"))
        assert schema.ancestors_of("Invited_PP") == {"Program_Paper", "Paper"}
        assert schema.root_supertypes_of("Invited_PP") == {"Paper"}

    def test_root_of_type_without_supertypes(self, schema):
        assert schema.root_supertypes_of("Paper") == {"Paper"}


class TestConstraintQueries:
    def test_is_unique_and_is_total(self, schema):
        role = RoleId("has_id", "with")
        assert not schema.is_unique(role)
        schema.add_constraint(UniquenessConstraint("U1", roles=(role,)))
        schema.add_constraint(
            TotalUnionConstraint("T1", object_type="Paper", items=(role,))
        )
        assert schema.is_unique(role)
        assert schema.is_total(role)
        assert schema.is_mandatory(role)

    def test_external_uniqueness_does_not_make_role_unique(self, schema):
        schema.add_fact_type(
            FactType("f2", Role("with", "Paper"), Role("of2", "Paper_Id"))
        )
        schema.add_constraint(
            UniquenessConstraint(
                "U1", roles=(RoleId("has_id", "with"), RoleId("f2", "with"))
            )
        )
        assert not schema.is_unique(RoleId("has_id", "with"))

    def test_functional_roles_of(self, schema):
        role = RoleId("has_id", "with")
        schema.add_constraint(UniquenessConstraint("U1", roles=(role,)))
        assert schema.functional_roles_of("Paper") == [role]
        assert schema.functional_roles_of("Paper_Id") == []

    def test_constraints_over(self, schema):
        role = RoleId("has_id", "with")
        schema.add_constraint(UniquenessConstraint("U1", roles=(role,)))
        assert [c.name for c in schema.constraints_over(role)] == ["U1"]


class TestWholeSchema:
    def test_copy_is_independent(self, schema):
        duplicate = schema.copy()
        duplicate.add_object_type(nolot("Extra"))
        assert not schema.has_object_type("Extra")
        assert duplicate.has_object_type("Extra")

    def test_copy_equality(self, schema):
        assert schema.copy() == schema

    def test_fresh_name(self, schema):
        assert schema.fresh_name("Paper") == "Paper_2"
        assert schema.fresh_name("Novel") == "Novel"
        assert schema.fresh_name("Novel", taken=["Novel"]) == "Novel_2"

    def test_stats(self, schema):
        stats = schema.stats()
        assert stats["object_types"] == 3
        assert stats["nolots"] == 2
        assert stats["lots"] == 1
        assert stats["fact_types"] == 1
        assert stats["sublinks"] == 1

    def test_builder_roundtrip_equality(self):
        def build():
            b = SchemaBuilder("s")
            b.nolot("Paper").lot("Paper_Id", char(6))
            b.identifier("Paper", "Paper_Id")
            return b.build()

        assert build() == build()
