"""Tests for reference schemes (naming conventions / referability)."""

import pytest

from repro.brm import ReferenceResolver, SchemaBuilder, candidate_schemes, char, numeric
from repro.errors import NotReferableError, SchemaError


def simple_schema():
    b = SchemaBuilder("s")
    b.nolot("Paper").lot("Paper_Id", char(6)).lot("Title", char(50))
    b.identifier("Paper", "Paper_Id", fact="has_id")
    b.attribute("Paper", "Title", fact="titled", total=True)
    return b.build()


class TestCandidates:
    def test_lot_is_self_referable(self):
        schema = simple_schema()
        schemes = candidate_schemes(schema, "Paper_Id")
        assert [s.kind for s in schemes] == ["self"]

    def test_simple_scheme_found(self):
        schema = simple_schema()
        kinds = {s.kind for s in candidate_schemes(schema, "Paper")}
        assert "simple" in kinds

    def test_non_identifying_fact_is_no_scheme(self):
        # "titled" lacks uniqueness on the Title side: not 1:1.
        schema = simple_schema()
        schemes = candidate_schemes(schema, "Paper")
        assert all(
            all(c.fact != "titled" for c in s.components) for s in schemes
        )

    def test_optional_identifying_fact_is_no_scheme(self):
        b = SchemaBuilder("s")
        b.nolot("Paper").lot("Paper_Id", char(6))
        # 1:1 but not total: some paper might lack an id.
        b.fact("has_id", ("Paper", "with"), ("Paper_Id", "of"), unique="both")
        schemes = candidate_schemes(b.build(), "Paper")
        assert schemes == []

    def test_inherited_scheme_candidate(self):
        b = SchemaBuilder("s")
        b.nolot("Paper").nolot("PP").lot("Paper_Id", char(6))
        b.identifier("Paper", "Paper_Id")
        b.subtype("PP", "Paper")
        kinds = {s.kind for s in candidate_schemes(b.build(), "PP")}
        assert kinds == {"inherited"}

    def test_compound_scheme_candidate(self):
        b = SchemaBuilder("s")
        b.nolot("Building").lot("Street", char(20)).lot("Nr", numeric(4))
        b.attribute("Building", "Street", fact="on", total=True)
        b.attribute("Building", "Nr", fact="at", total=True)
        b.unique(("on", "of"), ("at", "of"))
        schemes = candidate_schemes(b.build(), "Building")
        assert [s.kind for s in schemes] == ["compound"]
        assert len(schemes[0].components) == 2


class TestResolver:
    def test_simple_resolution(self):
        resolver = ReferenceResolver(simple_schema())
        assert resolver.is_referable("Paper")
        scheme = resolver.chosen_scheme("Paper")
        assert scheme.kind == "simple"
        leaves = resolver.leaves("Paper")
        assert len(leaves) == 1
        assert leaves[0].lot == "Paper_Id"

    def test_non_referable_nolot_detected(self):
        b = SchemaBuilder("s")
        b.nolot("Ghost").lot("Name", char(10))
        b.attribute("Ghost", "Name")  # not 1:1, not total
        resolver = ReferenceResolver(b.build())
        assert resolver.non_referable() == {"Ghost"}
        with pytest.raises(NotReferableError):
            resolver.leaves("Ghost")

    def test_transitive_reference_through_nolot(self):
        b = SchemaBuilder("s")
        b.nolot("Talk").nolot("Paper").lot("Paper_Id", char(6))
        b.identifier("Paper", "Paper_Id")
        b.identifier("Talk", "Paper", fact="talk_on")
        resolver = ReferenceResolver(b.build())
        assert resolver.is_referable("Talk")
        leaves = resolver.leaves("Talk")
        assert [leaf.lot for leaf in leaves] == ["Paper_Id"]
        assert len(leaves[0].path) == 2  # Talk -> Paper -> Paper_Id

    def test_inherited_resolution(self):
        b = SchemaBuilder("s")
        b.nolot("Paper").nolot("PP").lot("Paper_Id", char(6))
        b.identifier("Paper", "Paper_Id")
        b.subtype("PP", "Paper")
        resolver = ReferenceResolver(b.build())
        scheme = resolver.chosen_scheme("PP")
        assert scheme.kind == "inherited"
        assert resolver.leaves("PP")[0].lot == "Paper_Id"

    def test_smallest_representation_wins(self):
        b = SchemaBuilder("s")
        b.nolot("Person").lot("Ssn", numeric(9)).lot("FullName", char(60))
        b.identifier("Person", "Ssn")
        b.identifier("Person", "FullName")
        resolver = ReferenceResolver(b.build())
        # NUMERIC(9) is physically smaller than CHAR(60).
        assert resolver.leaves("Person")[0].lot == "Ssn"

    def test_preference_overrides_smallest(self):
        b = SchemaBuilder("s")
        b.nolot("Person").lot("Ssn", numeric(9)).lot("FullName", char(60))
        b.identifier("Person", "Ssn")
        b.identifier("Person", "FullName")
        resolver = ReferenceResolver(
            b.build(), preferences={"Person": ("Person_has_FullName",)}
        )
        assert resolver.leaves("Person")[0].lot == "FullName"

    def test_impossible_preference_raises(self):
        with pytest.raises(SchemaError):
            ReferenceResolver(
                simple_schema(), preferences={"Paper": ("no_such_fact",)}
            )

    def test_compound_expansion(self):
        b = SchemaBuilder("s")
        b.nolot("Building").lot("Street", char(20)).lot("Nr", numeric(4))
        b.attribute("Building", "Street", fact="on", total=True)
        b.attribute("Building", "Nr", fact="at", total=True)
        b.unique(("on", "of"), ("at", "of"))
        resolver = ReferenceResolver(b.build())
        leaves = resolver.leaves("Building")
        assert [leaf.lot for leaf in leaves] == ["Street", "Nr"]

    def test_representation_cost(self):
        resolver = ReferenceResolver(simple_schema())
        involved, size = resolver.representation_cost("Paper")
        assert involved == 2  # Paper + Paper_Id
        assert size == 6

    def test_lot_nolot_is_its_own_representation(self):
        b = SchemaBuilder("s")
        b.lot_nolot("Session", numeric(3))
        resolver = ReferenceResolver(b.build())
        leaves = resolver.leaves("Session")
        assert leaves[0].lot == "Session"
        assert leaves[0].path == ()

    def test_inherited_scheme_follows_late_preference(self):
        # The supertype prefers a via-NOLOT scheme that grounds one
        # fix-point iteration after its direct scheme; the subtype's
        # inherited expansion must be refreshed, not frozen on the
        # first (pre-preference) choice.
        b = SchemaBuilder("s")
        b.nolot("P").nolot("Q").nolot("S")
        b.lot("Direct", char(10)).lot("QK", char(2))
        b.identifier("Q", "QK")
        b.identifier("P", "Direct", fact="p_direct")
        b.identifier("P", "Q", fact="p_via_q")
        b.subtype("S", "P")
        resolver = ReferenceResolver(
            b.build(), preferences={"P": ("p_via_q",)}
        )
        assert [l.lot for l in resolver.leaves("P")] == ["QK"]
        assert [l.lot for l in resolver.leaves("S")] == ["QK"]

    def test_cyclic_nolot_references_do_not_ground(self):
        # A references B for identity and B references A: neither can
        # ever reach a LOT, so both are non-referable.
        b = SchemaBuilder("s")
        b.nolot("A").nolot("B")
        b.identifier("A", "B", fact="a_by_b")
        b.identifier("B", "A", fact="b_by_a")
        resolver = ReferenceResolver(b.build())
        assert resolver.non_referable() == {"A", "B"}
