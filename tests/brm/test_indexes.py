"""Indexed schema queries vs. the linear-scan oracle, and the
version-stamp semantics the index/memo layers are built on.

The equivalence tests replay every navigation query through both the
indexed :class:`BinarySchema` methods and the retained
:class:`LinearScanOracle` after randomized mutation sequences; the
version tests pin down the invalidation contract (every mutator
bumps, copies share stamps, constraint-only mutations invalidate the
memoized ``analyze()``/``SubsetGraph``).
"""

import random

import pytest

from repro.analyzer.api import analyze
from repro.analyzer.consistency import subset_graph_for
from repro.analyzer.correctness import check_correctness
from repro.brm import (
    BinarySchema,
    ExclusionConstraint,
    FactType,
    FrequencyConstraint,
    Role,
    RoleId,
    SubsetConstraint,
    SublinkRef,
    SublinkType,
    TotalUnionConstraint,
    UniquenessConstraint,
    char,
    lot,
    nolot,
)
from repro.brm.indexes import LinearScanOracle, indexes_for
from repro.errors import DuplicateNameError, SchemaError
from repro.workloads import SchemaShape, generate_schema


def assert_indexed_equals_oracle(schema: BinarySchema) -> None:
    """Every query method agrees with the linear-scan reference."""
    oracle = LinearScanOracle(schema)
    for object_type in schema.object_types:
        name = object_type.name
        assert schema.roles_played_by(name) == oracle.roles_played_by(name)
        assert schema.facts_involving(name) == oracle.facts_involving(name)
        assert schema.sublinks_from(name) == oracle.sublinks_from(name)
        assert schema.sublinks_to(name) == oracle.sublinks_to(name)
        assert schema.supertypes_of(name) == oracle.supertypes_of(name)
        assert schema.subtypes_of(name) == oracle.subtypes_of(name)
        assert schema.ancestors_of(name) == oracle.ancestors_of(name)
        assert schema.descendants_of(name) == oracle.descendants_of(name)
        assert schema.root_supertypes_of(name) == oracle.root_supertypes_of(
            name
        )
        assert schema.total_constraints_on(name) == oracle.total_constraints_on(
            name
        )
        assert schema.value_constraint_on(name) == oracle.value_constraint_on(
            name
        )
        assert schema.functional_roles_of(name) == oracle.functional_roles_of(
            name
        )
        for role_id in oracle.roles_played_by(name):
            assert schema.is_unique(role_id) == oracle.is_unique(role_id)
            assert schema.is_total(role_id) == oracle.is_total(role_id)
            assert schema.constraints_over(role_id) == oracle.constraints_over(
                role_id
            )
    for sublink in schema.sublinks:
        ref = SublinkRef(sublink.name)
        assert schema.constraints_over(ref) == oracle.constraints_over(ref)
    assert schema.uniqueness_constraints() == oracle.uniqueness_constraints()
    assert schema.exclusions() == oracle.exclusions()
    assert schema.equalities() == oracle.equalities()
    assert schema.subsets() == oracle.subsets()
    assert schema.totals() == oracle.totals()


# ----------------------------------------------------------------------
# Randomized mutation sequences
# ----------------------------------------------------------------------


def _random_mutation(schema: BinarySchema, rng: random.Random, step: int):
    """Apply one random mutation through the public mutator API.

    Invalid choices (duplicates, cycles, still-referenced elements)
    are skipped — the point is a long arbitrary sequence of
    *successful* mutations, each of which must leave the indexes
    consistent with the oracle.
    """
    nolots = [t.name for t in schema.object_types if t.is_nolot]
    facts = list(schema.fact_types)
    constraints = list(schema.constraints)
    choice = rng.randrange(7)
    try:
        if choice == 0:
            leg = schema.add_object_type(lot(f"mut_lot_{step}", char(8)))
            owner = rng.choice(nolots)
            fact = schema.add_fact_type(
                FactType(
                    f"mut_fact_{step}",
                    Role("of", owner),
                    Role("is", leg.name),
                )
            )
            schema.add_constraint(
                UniquenessConstraint(
                    f"mut_uc_{step}", roles=(RoleId(fact.name, "of"),)
                )
            )
        elif choice == 1 and constraints:
            schema.remove_constraint(rng.choice(constraints).name)
        elif choice == 2 and facts:
            fact = rng.choice(facts)
            schema.add_constraint(
                FrequencyConstraint(
                    f"mut_freq_{step}",
                    role=RoleId(fact.name, fact.second.name),
                    minimum=2,
                    maximum=5,
                )
            )
        elif choice == 3 and len(nolots) >= 2:
            subtype, supertype = rng.sample(nolots, 2)
            schema.add_sublink(
                SublinkType(f"mut_sub_{step}", subtype, supertype)
            )
        elif choice == 4 and facts:
            fact = rng.choice(facts)
            if not schema.constraints_over(
                RoleId(fact.name, fact.first.name)
            ) and not schema.constraints_over(
                RoleId(fact.name, fact.second.name)
            ):
                schema.remove_fact_type(fact.name)
        elif choice == 5 and len(facts) >= 2:
            first, second = rng.sample(facts, 2)
            schema.add_constraint(
                ExclusionConstraint(
                    f"mut_excl_{step}",
                    items=(
                        RoleId(first.name, first.first.name),
                        RoleId(second.name, second.first.name),
                    ),
                )
            )
        elif choice == 6 and len(facts) >= 2:
            first, second = rng.sample(facts, 2)
            schema.add_constraint(
                SubsetConstraint(
                    f"mut_subs_{step}",
                    subset=RoleId(first.name, first.first.name),
                    superset=RoleId(second.name, second.first.name),
                )
            )
    except (SchemaError, DuplicateNameError):
        pass  # invalid random choice; the schema is unchanged


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_equivalence_after_randomized_mutations(seed):
    rng = random.Random(seed)
    schema = generate_schema(
        SchemaShape(entity_types=4, rich_constraints=True), seed=seed
    )
    assert_indexed_equals_oracle(schema)
    for step in range(30):
        before = schema.version
        _random_mutation(schema, rng, step)
        if schema.version != before:
            assert_indexed_equals_oracle(schema)
    assert_indexed_equals_oracle(schema)


def test_equivalence_on_generated_industrial_slice():
    schema = generate_schema(
        SchemaShape(entity_types=8, rich_constraints=True), seed=1989
    )
    assert_indexed_equals_oracle(schema)


# ----------------------------------------------------------------------
# Version-stamp semantics
# ----------------------------------------------------------------------


@pytest.fixture
def small_schema():
    s = BinarySchema("versioned")
    s.add_object_type(nolot("Paper"))
    s.add_object_type(nolot("Accepted_Paper"))
    s.add_object_type(lot("Paper_Id", char(6)))
    s.add_fact_type(
        FactType("has_id", Role("with", "Paper"), Role("of", "Paper_Id"))
    )
    s.add_constraint(
        UniquenessConstraint(
            "UC_has_id", roles=(RoleId("has_id", "with"),), is_reference=True
        )
    )
    s.add_sublink(SublinkType("AP_IS_Paper", "Accepted_Paper", "Paper"))
    return s


def test_every_mutator_bumps_the_version(small_schema):
    s = small_schema
    mutations = [
        lambda: s.add_object_type(nolot("Reviewer")),
        lambda: s.add_fact_type(
            FactType(
                "reviewed_by", Role("by", "Paper"), Role("did", "Reviewer")
            )
        ),
        lambda: s.add_sublink(
            SublinkType("R_IS_P", "Reviewer", "Paper")
        ),
        lambda: s.add_constraint(
            TotalUnionConstraint(
                "T_with", object_type="Paper", items=(RoleId("has_id", "with"),)
            )
        ),
        lambda: s.remove_constraint("T_with"),
        lambda: s.remove_sublink("R_IS_P"),
        lambda: s.remove_fact_type("reviewed_by"),
        lambda: s.remove_object_type("Reviewer"),
    ]
    for mutate in mutations:
        before = s.version
        mutate()
        assert s.version > before


def test_failed_mutation_does_not_bump(small_schema):
    before = small_schema.version
    with pytest.raises(DuplicateNameError):
        small_schema.add_object_type(nolot("Paper"))
    assert small_schema.version == before


def test_copy_shares_version_and_indexes(small_schema):
    copy = small_schema.copy()
    assert copy.version == small_schema.version
    assert indexes_for(copy) is indexes_for(small_schema)
    assert small_schema.same_elements(copy)
    # Mutating the copy diverges it without touching the original.
    copy.add_object_type(nolot("Only_In_Copy"))
    assert copy.version != small_schema.version
    assert not small_schema.same_elements(copy)
    assert small_schema.roles_played_by("Paper") == [RoleId("has_id", "with")]
    assert_indexed_equals_oracle(copy)
    assert_indexed_equals_oracle(small_schema)


def test_element_counts(small_schema):
    assert small_schema.element_counts() == (3, 1, 1, 1)


# ----------------------------------------------------------------------
# Memo invalidation
# ----------------------------------------------------------------------


def test_constraint_only_mutation_invalidates_analyze(small_schema):
    first = analyze(small_schema)
    assert analyze(small_schema) is first  # memo hit on same version
    # A constraint-only mutation leaves facts/types/sublinks alone but
    # must still bump the version and invalidate the memo.
    before = small_schema.version
    small_schema.add_constraint(
        TotalUnionConstraint(
            "T_inv", object_type="Paper", items=(RoleId("has_id", "with"),)
        )
    )
    assert small_schema.version > before
    second = analyze(small_schema)
    assert second is not first
    small_schema.remove_constraint("T_inv")
    # Same elements as the start, but a fresh version: no stale reuse.
    third = analyze(small_schema)
    assert third is not first and third is not second


def test_constraint_only_mutation_invalidates_subset_graph(small_schema):
    first = subset_graph_for(small_schema)
    assert subset_graph_for(small_schema) is first
    small_schema.add_constraint(
        SubsetConstraint(
            "S_inv",
            subset=RoleId("has_id", "with"),
            superset=RoleId("has_id", "of"),
        )
    )
    second = subset_graph_for(small_schema)
    assert second is not first
    assert second.reaches(
        ("role", "has_id", "with"), ("role", "has_id", "of")
    )
    assert not first.reaches(
        ("role", "has_id", "with"), ("role", "has_id", "of")
    )


def test_copy_hits_the_same_memo_entry(small_schema):
    report = analyze(small_schema)
    assert analyze(small_schema.copy()) is report


def test_uncached_correctness_bypasses_memo(small_schema):
    cached = check_correctness(small_schema)
    assert check_correctness(small_schema) is cached
    fresh = check_correctness.uncached(small_schema)
    assert fresh is not cached
    assert fresh == cached


def test_subset_graph_reaches_matches_bfs_semantics(small_schema):
    """Spot-check the SCC/bitmask reachability on known paths."""
    graph = subset_graph_for(small_schema)
    # role -> player: pop(has_id.with) <= pop(Paper)
    assert graph.reaches(("role", "has_id", "with"), ("type", "Paper"))
    # subtype chain: pop(Accepted_Paper) <= pop(Paper)
    assert graph.reaches(("type", "Accepted_Paper"), ("type", "Paper"))
    assert not graph.reaches(("type", "Paper"), ("type", "Accepted_Paper"))
    # lower bounds of Paper include its subtype and its roles
    bounds = graph.lower_bounds(("type", "Paper"))
    assert ("type", "Accepted_Paper") in bounds
    assert ("role", "has_id", "with") in bounds
    # unknown nodes only bound themselves
    assert graph.lower_bounds(("type", "Ghost")) == frozenset(
        (("type", "Ghost"),)
    )
    assert not graph.reaches(("type", "Ghost"), ("type", "Paper"))
    assert graph.reaches(("type", "Ghost"), ("type", "Ghost"))
