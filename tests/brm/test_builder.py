"""Tests for the SchemaBuilder (RIDL-G programmatic core)."""

import pytest

from repro.brm import (
    RoleId,
    SchemaBuilder,
    SublinkRef,
    TotalUnionConstraint,
    UniquenessConstraint,
    char,
    numeric,
)
from repro.errors import SchemaError


class TestShorthands:
    def test_fact_unique_both(self):
        b = SchemaBuilder()
        b.nolot("A").lot("K", char(3))
        b.fact("f", ("A", "x"), ("K", "y"), unique="both", total="first")
        schema = b.build()
        assert schema.is_unique(RoleId("f", "x"))
        assert schema.is_unique(RoleId("f", "y"))
        assert schema.is_total(RoleId("f", "x"))
        assert not schema.is_total(RoleId("f", "y"))

    def test_fact_unique_pair(self):
        b = SchemaBuilder()
        b.nolot("A").nolot("B")
        b.fact("f", ("A", "x"), ("B", "y"), unique="pair")
        schema = b.build()
        # The pair constraint spans both roles; neither role alone is unique.
        assert not schema.is_unique(RoleId("f", "x"))
        constraints = schema.uniqueness_constraints()
        assert len(constraints) == 1
        assert len(constraints[0].roles) == 2

    def test_unknown_shorthand_rejected(self):
        b = SchemaBuilder()
        b.nolot("A").nolot("B")
        with pytest.raises(SchemaError):
            b.fact("f", ("A", "x"), ("B", "y"), unique="nope")
        b.fact("g", ("A", "x"), ("B", "y"))
        with pytest.raises(SchemaError):
            b.fact("h", ("A", "x"), ("B", "y"), total="nope")

    def test_attribute_defaults(self):
        b = SchemaBuilder()
        b.nolot("Paper").lot("Title", char(50))
        b.attribute("Paper", "Title", total=True)
        schema = b.build()
        fact = schema.fact_type("Paper_has_Title")
        assert fact.players == ("Paper", "Title")
        assert schema.is_unique(RoleId("Paper_has_Title", "with"))
        assert schema.is_total(RoleId("Paper_has_Title", "with"))

    def test_identifier_marks_reference(self):
        b = SchemaBuilder()
        b.nolot("Paper").lot("Paper_Id", char(6))
        b.identifier("Paper", "Paper_Id")
        schema = b.build()
        reference = [
            c
            for c in schema.uniqueness_constraints()
            if isinstance(c, UniquenessConstraint) and c.is_reference
        ]
        assert len(reference) == 1
        assert reference[0].roles == (RoleId("Paper_has_Paper_Id", "with"),)

    def test_subtype_default_name(self):
        b = SchemaBuilder()
        b.nolot("Paper").nolot("PP")
        b.subtype("PP", "Paper")
        assert b.build().has_sublink("PP_IS_Paper")


class TestItemSpecs:
    def test_string_role_spec(self):
        b = SchemaBuilder()
        b.nolot("A").lot("K", char(3))
        b.fact("f", ("A", "x"), ("K", "y"))
        b.unique("f.x")
        assert b.build().is_unique(RoleId("f", "x"))

    def test_sublink_string_spec(self):
        b = SchemaBuilder()
        b.nolot("A").nolot("B").nolot("C")
        b.subtype("B", "A").subtype("C", "A")
        b.exclusion("sublink:B_IS_A", "sublink:C_IS_A")
        constraints = b.build().exclusions()
        assert constraints[0].items == (SublinkRef("B_IS_A"), SublinkRef("C_IS_A"))

    def test_bad_spec_rejected(self):
        b = SchemaBuilder()
        with pytest.raises(SchemaError):
            b.unique(42)

    def test_total_union_with_mixed_items(self):
        b = SchemaBuilder()
        b.nolot("A").nolot("B").lot("K", char(3))
        b.subtype("B", "A")
        b.fact("f", ("A", "x"), ("K", "y"))
        b.total_union("A", ("f", "x"), "sublink:B_IS_A")
        totals = b.build().totals()
        assert len(totals[0].items) == 2


class TestNameGeneration:
    def test_constraint_names_are_fresh(self):
        b = SchemaBuilder()
        b.nolot("A").lot("K", char(3))
        b.fact("f", ("A", "x"), ("K", "y"))
        b.unique("f.x", name="U1")
        b.unique("f.y")  # auto name must skip U1
        names = {c.name for c in b.build().constraints}
        assert len(names) == 2

    def test_counters_are_per_kind(self):
        b = SchemaBuilder()
        b.nolot("A").lot("K", char(3)).lot("L", numeric(2))
        b.fact("f", ("A", "x"), ("K", "y"))
        b.fact("g", ("A", "x"), ("L", "y"))
        b.unique("f.x").total("g.x")
        schema = b.build()
        assert schema.has_constraint("U1")
        assert schema.has_constraint("T1")


class TestFluency:
    def test_chaining_returns_builder(self):
        b = SchemaBuilder()
        result = b.nolot("A").lot("K", char(3)).lot_nolot("P", char(10))
        assert result is b

    def test_build_returns_live_schema(self):
        b = SchemaBuilder("name")
        schema = b.build()
        b.nolot("A")
        assert schema.has_object_type("A")  # builder edits the same schema
        assert schema.name == "name"
