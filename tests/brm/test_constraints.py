"""Tests for the constraint taxonomy (well-formedness rules)."""

import pytest

from repro.brm import (
    EqualityConstraint,
    ExclusionConstraint,
    FrequencyConstraint,
    RoleId,
    SublinkRef,
    SubsetConstraint,
    TotalUnionConstraint,
    UniquenessConstraint,
    ValueConstraint,
    items_of,
)
from repro.errors import ConstraintError

R1 = RoleId("f1", "a")
R2 = RoleId("f2", "b")
S1 = SublinkRef("Sub_IS_Super")


class TestUniqueness:
    def test_simple(self):
        constraint = UniquenessConstraint("U1", roles=(R1,))
        assert constraint.is_simple
        assert not constraint.is_external

    def test_external_spans_facts(self):
        constraint = UniquenessConstraint("U2", roles=(R1, R2))
        assert constraint.is_external
        assert not constraint.is_simple

    def test_pair_within_one_fact_is_not_external(self):
        constraint = UniquenessConstraint(
            "U3", roles=(RoleId("f1", "a"), RoleId("f1", "b"))
        )
        assert not constraint.is_external

    def test_requires_roles(self):
        with pytest.raises(ConstraintError):
            UniquenessConstraint("U4", roles=())

    def test_rejects_duplicate_roles(self):
        with pytest.raises(ConstraintError):
            UniquenessConstraint("U5", roles=(R1, R1))

    def test_reference_flag(self):
        assert UniquenessConstraint("U6", roles=(R1,), is_reference=True).is_reference


class TestTotalUnion:
    def test_single_role_is_total_role(self):
        constraint = TotalUnionConstraint("T1", object_type="Paper", items=(R1,))
        assert constraint.is_total_role

    def test_union_over_sublinks_is_not_total_role(self):
        constraint = TotalUnionConstraint("T2", object_type="Paper", items=(S1,))
        assert not constraint.is_total_role

    def test_requires_object_type(self):
        with pytest.raises(ConstraintError):
            TotalUnionConstraint("T3", object_type="", items=(R1,))

    def test_requires_items(self):
        with pytest.raises(ConstraintError):
            TotalUnionConstraint("T4", object_type="Paper", items=())


class TestExclusionEqualitySubset:
    def test_exclusion_needs_two_items(self):
        with pytest.raises(ConstraintError):
            ExclusionConstraint("X1", items=(R1,))

    def test_exclusion_rejects_duplicates(self):
        with pytest.raises(ConstraintError):
            ExclusionConstraint("X2", items=(R1, R1))

    def test_exclusion_mixes_roles_and_sublinks(self):
        constraint = ExclusionConstraint("X3", items=(R1, S1))
        assert items_of(constraint) == (R1, S1)

    def test_equality_needs_two_items(self):
        with pytest.raises(ConstraintError):
            EqualityConstraint("E1", items=(R1,))

    def test_subset_needs_distinct_ends(self):
        with pytest.raises(ConstraintError):
            SubsetConstraint("S1", subset=R1, superset=R1)

    def test_subset_items(self):
        constraint = SubsetConstraint("S2", subset=R1, superset=R2)
        assert items_of(constraint) == (R1, R2)


class TestFrequencyAndValue:
    def test_frequency_bounds(self):
        constraint = FrequencyConstraint("F1", role=R1, minimum=2, maximum=4)
        assert items_of(constraint) == (R1,)

    def test_frequency_rejects_bad_bounds(self):
        with pytest.raises(ConstraintError):
            FrequencyConstraint("F2", role=R1, minimum=3, maximum=2)
        with pytest.raises(ConstraintError):
            FrequencyConstraint("F3", role=R1, minimum=-1)

    def test_frequency_requires_role(self):
        with pytest.raises(ConstraintError):
            FrequencyConstraint("F4")

    def test_value_constraint(self):
        constraint = ValueConstraint("V1", object_type="Flag", values=("Y", "N"))
        assert constraint.values == ("Y", "N")

    def test_value_requires_values(self):
        with pytest.raises(ConstraintError):
            ValueConstraint("V2", object_type="Flag", values=())


class TestKinds:
    def test_kind_tags(self):
        assert UniquenessConstraint("a", roles=(R1,)).kind == "uniqueness"
        assert TotalUnionConstraint("b", object_type="X", items=(R1,)).kind == "totalunion"
        assert ExclusionConstraint("c", items=(R1, R2)).kind == "exclusion"

    def test_empty_name_rejected(self):
        with pytest.raises(ConstraintError):
            UniquenessConstraint("", roles=(R1,))
