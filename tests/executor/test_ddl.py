"""Executable DDL: types, creation order, and load smoke tests.

The paper-style emitter reproduces the 1989 listing; the executor's
DDL must actually load.  The smoke tests execute every statement on
real engines for every bundled example schema, in both shapes
(``enforce=False`` bare tables, ``enforce=True`` with declarative
constraints).
"""

import sqlite3
from pathlib import Path

import pytest

from repro.brm.datatypes import DataType, DataTypeKind
from repro.dsl import parse
from repro.executor import (
    create_table_statements,
    executable_ddl,
    executable_type,
    index_statements,
)
from repro.mapper import map_schema
from tests.executor.conftest import build_authorship_schema, requires_duckdb

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def example_schemas():
    from repro.cris import cris_schema, figure6_schema

    schemas = [figure6_schema(), cris_schema(), build_authorship_schema()]
    for path in sorted(EXAMPLES.glob("*.ridl")):
        schemas.append(parse(path.read_text()))
    return schemas


class TestExecutableTypes:
    @pytest.mark.parametrize(
        "datatype, expected",
        [
            (DataType(DataTypeKind.CHAR, 6), "VARCHAR"),
            (DataType(DataTypeKind.VARCHAR, 30), "VARCHAR"),
            (DataType(DataTypeKind.DATE), "VARCHAR"),
            (DataType(DataTypeKind.BOOLEAN), "VARCHAR"),
            (DataType(DataTypeKind.INTEGER), "BIGINT"),
            (DataType(DataTypeKind.SMALLINT), "BIGINT"),
            (DataType(DataTypeKind.NUMERIC, 5), "BIGINT"),
            (DataType(DataTypeKind.NUMERIC, 7, 2), "DOUBLE"),
            (DataType(DataTypeKind.REAL), "DOUBLE"),
        ],
    )
    def test_type_map(self, datatype, expected):
        assert executable_type(datatype) == expected


class TestCreationOrder:
    def test_referenced_tables_come_first(self, cris):
        schema = map_schema(cris).relational
        statements = create_table_statements(schema)
        position = {
            statement.split()[2]: index
            for index, statement in enumerate(statements)
        }
        for foreign_key in schema.foreign_keys():
            if foreign_key.referenced_relation == foreign_key.relation:
                continue
            assert (
                position[foreign_key.referenced_relation]
                < position[foreign_key.relation]
            )

    def test_enforce_adds_declarative_clauses(self, fig6):
        schema = map_schema(fig6).relational
        ddl = executable_ddl(schema, enforce=True)
        assert "PRIMARY KEY" in ddl
        assert "FOREIGN KEY" in ddl
        assert "NOT NULL" in ddl
        bare = executable_ddl(schema)
        for clause in ("PRIMARY KEY", "FOREIGN KEY", "NOT NULL", "CHECK"):
            assert clause not in bare

    def test_index_statements_cover_every_key(self, cris):
        schema = map_schema(cris).relational
        statements = index_statements(schema)
        indexed = {
            statement.split(" ON ")[1].split(" ")[0]
            for statement in statements
        }
        keyed = {
            relation.name
            for relation in schema.relations
            if schema.keys_of(relation.name)
        }
        assert indexed == keyed


class TestLoadSmoke:
    """The emitted DDL loads cleanly on real engines."""

    @pytest.mark.parametrize(
        "schema", example_schemas(), ids=lambda s: s.name
    )
    @pytest.mark.parametrize("enforce", [False, True])
    def test_sqlite_loads_every_example(self, schema, enforce):
        relational = map_schema(schema).relational
        connection = sqlite3.connect(":memory:")
        try:
            for statement in create_table_statements(
                relational, enforce=enforce
            ):
                connection.execute(statement)
            for statement in index_statements(relational):
                connection.execute(statement)
        finally:
            connection.close()

    @requires_duckdb
    @pytest.mark.parametrize(
        "schema", example_schemas(), ids=lambda s: s.name
    )
    @pytest.mark.parametrize("enforce", [False, True])
    def test_duckdb_loads_every_example(self, schema, enforce):
        import duckdb

        relational = map_schema(schema).relational
        connection = duckdb.connect(":memory:")
        try:
            for statement in create_table_statements(
                relational, enforce=enforce
            ):
                connection.execute(statement)
            for statement in index_statements(relational):
                connection.execute(statement)
        finally:
            connection.close()
