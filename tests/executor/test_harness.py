"""The end-to-end harness: round trips, detection matrices, reports.

The acceptance shape of the executor subsystem: on the paper's
schemas and the fig. 6 mapping alternatives, a valid generated state
violates nothing, round-trips exactly, and the injection detection
matrix is *diagonal* — every surgical violation is caught by its
target rule and by no other.
"""

import json

import pytest

from repro.executor import (
    ValidationReport,
    resolve_backend,
    run_validation,
)
from repro.mapper import MappingOptions, NullPolicy, SublinkPolicy
from repro.robustness.violations import MUTATOR_KINDS
from tests.executor.conftest import requires_duckdb

FIG6_ALTERNATIVES = (
    MappingOptions(),
    MappingOptions(sublink_policy=SublinkPolicy.TOGETHER),
    MappingOptions(sublink_policy=SublinkPolicy.INDICATOR),
    MappingOptions(null_policy=NullPolicy.NOT_ALLOWED),
    MappingOptions(
        null_policy=NullPolicy.NOT_IN_KEYS,
        sublink_policy=SublinkPolicy.INDICATOR,
    ),
)


class TestBackendResolution:
    def test_auto_picks_an_available_backend(self):
        resolved = resolve_backend("auto")
        try:
            assert resolved.used in ("duckdb", "sqlite")
        finally:
            resolved.backend.close()

    def test_explicit_unavailable_backend_degrades_with_note(self):
        from repro.executor import duckdb_available

        if duckdb_available():
            pytest.skip("duckdb installed; fallback path not reachable")
        resolved = resolve_backend("duckdb")
        try:
            assert resolved.requested == "duckdb"
            assert resolved.used == "sqlite"
            assert "fell back" in resolved.note
        finally:
            resolved.backend.close()

    def test_unknown_backend_is_rejected(self):
        with pytest.raises(Exception, match="unknown backend"):
            resolve_backend("oracle-v5")


class TestValidStateAndRoundTrip:
    @pytest.mark.parametrize("backend", ["memory", "sqlite"])
    def test_cris_is_valid_and_round_trips(self, cris, backend):
        report = run_validation(
            cris, backend=backend, scale=300, seed=7, inject=False
        )
        assert report.violations_on_valid == ()
        assert report.round_trip_ok
        assert report.round_trip_diff == {}
        assert report.ok

    @pytest.mark.parametrize(
        "options", FIG6_ALTERNATIVES, ids=lambda o: repr(o)[:40]
    )
    def test_fig6_alternatives_round_trip(self, fig6, options):
        report = run_validation(
            fig6, options, backend="sqlite", scale=200, seed=7,
            inject=False,
        )
        assert report.ok, report.render()


class TestDetectionMatrix:
    @pytest.mark.parametrize("backend", ["memory", "sqlite"])
    def test_cris_matrix_is_diagonal(self, cris, backend):
        report = run_validation(cris, backend=backend, scale=300, seed=7)
        assert report.matrix is not None
        assert report.matrix.diagonal, report.render()
        kinds = {row.kind for row in report.matrix.rows}
        assert kinds >= {
            "null-breach", "duplicate-key", "orphan-foreign-key",
            "equality-asymmetry",
        }

    def test_together_alternative_exercises_check_breach(self, fig6):
        report = run_validation(
            fig6,
            MappingOptions(sublink_policy=SublinkPolicy.TOGETHER),
            backend="sqlite", scale=200, seed=7,
        )
        assert report.ok, report.render()
        assert "check-breach" in {row.kind for row in report.matrix.rows}

    @pytest.mark.parametrize("backend", ["memory", "sqlite"])
    def test_subset_leak_is_detected(self, authorship_schema, backend):
        report = run_validation(
            authorship_schema, backend=backend, scale=200, seed=7
        )
        assert report.ok, report.render()
        assert "subset-leak" in {row.kind for row in report.matrix.rows}

    def test_every_kind_fires_somewhere(self, cris, fig6,
                                        authorship_schema):
        fired = set()
        for schema, options in (
            (cris, MappingOptions()),
            (fig6, MappingOptions(sublink_policy=SublinkPolicy.TOGETHER)),
            (authorship_schema, MappingOptions()),
        ):
            report = run_validation(
                schema, options, backend="sqlite", scale=200, seed=7
            )
            assert report.ok, report.render()
            fired |= {row.kind for row in report.matrix.rows}
        assert fired == set(MUTATOR_KINDS)


class TestReport:
    def test_seed_determines_the_report(self, fig6):
        first = run_validation(fig6, backend="sqlite", scale=200, seed=11)
        second = run_validation(fig6, backend="sqlite", scale=200, seed=11)
        a, b = first.as_dict(), second.as_dict()
        a.pop("timings"), b.pop("timings")
        assert a == b

    def test_json_is_machine_readable(self, fig6):
        report = run_validation(fig6, backend="memory", scale=100, seed=7)
        decoded = json.loads(report.to_json())
        assert decoded["ok"] is True
        assert decoded["backend"]["used"] == "memory"
        assert decoded["matrix"]["diagonal"] is True
        assert decoded["rows_loaded"] == report.rows_loaded

    def test_render_summarizes_the_outcome(self, fig6):
        report = run_validation(fig6, backend="memory", scale=100, seed=7)
        text = report.render()
        assert "result: OK" in text
        assert "detection matrix" in text

    def test_invalid_state_is_reported(self, fig6):
        report = run_validation(fig6, backend="memory", scale=100, seed=7)
        broken = ValidationReport(
            **{**report.__dict__, "violations_on_valid": ("C_KEY$_1",)}
        )
        assert not broken.ok
        assert "INVALID" in broken.render()


@requires_duckdb
class TestDuckDBAtScale:
    def test_cris_1e5_rows_diagonal(self, cris):
        report = run_validation(
            cris, backend="duckdb", scale=100_000, seed=7
        )
        assert report.backend_used == "duckdb"
        assert report.rows_loaded >= 100_000
        assert report.ok, report.render()


class TestColumnarRoundTrip:
    """The columnar read-back path at 1e4 rows, on every backend.

    The round trip must be *exact* (empty diff at both the row and
    the population level), the report must record which backward-map
    implementation and bulk read path actually ran, and a backend
    without bulk reads must degrade to the row-dict reference oracle
    rather than fail.
    """

    @pytest.mark.parametrize("backend", ["memory", "sqlite"])
    def test_cris_1e4_exact_round_trip(self, cris, backend):
        report = run_validation(
            cris, backend=backend, scale=10_000, seed=7, inject=False
        )
        assert report.rows_loaded >= 10_000
        assert report.violations_on_valid == ()
        assert report.round_trip_ok
        assert report.round_trip_diff == {}
        assert report.round_trip_impl == "columnar"
        assert report.read_path == "native"

    @requires_duckdb
    def test_cris_1e4_exact_round_trip_duckdb(self, cris):
        report = run_validation(
            cris, backend="duckdb", scale=10_000, seed=7, inject=False
        )
        assert report.backend_used == "duckdb"
        assert report.round_trip_ok
        assert report.round_trip_diff == {}
        assert report.round_trip_impl == "columnar"
        # Arrow when pyarrow is importable, native column extraction
        # otherwise — never the reference fallback.
        assert report.read_path in ("arrow", "native")

    def test_report_records_round_trip_provenance(self, fig6):
        report = run_validation(
            fig6, backend="memory", scale=100, seed=7, inject=False
        )
        decoded = json.loads(report.to_json())
        assert decoded["round_trip"]["impl"] == "columnar"
        assert decoded["round_trip"]["read_path"] == "native"
        assert "(columnar map, native read)" in report.render()

    def test_backend_without_bulk_reads_uses_the_reference_map(self, fig6):
        from repro.executor import MemoryBackend, ResolvedBackend

        class NoBulkRead(MemoryBackend):
            def fetch_columns(self, relation, columns):
                raise NotImplementedError

        report = run_validation(
            fig6, backend="memory", scale=200, seed=7, inject=False,
            resolved=ResolvedBackend(NoBulkRead(), "memory", "memory"),
        )
        assert report.ok, report.render()
        assert report.round_trip_impl == "reference"
        assert report.read_path == "fallback"
        assert "(reference map, fallback read)" in report.render()
