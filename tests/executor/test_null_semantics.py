"""NULL-semantics audit: pseudo-SQL guards vs compiled checkers.

The engine's predicate evaluation is two-valued (a comparison against
NULL is false); plain SQL is three-valued.  Two properties keep the
backends' verdicts identical on schemas with optional roles:

1. Every ``IS NOT NULL`` guard the pseudo-SQL emitter prints for a
   view-constraint side appears verbatim in the compiled checker, and
   vice versa — the guards *are* the agreed two-valued fragment.
2. Comparison atoms are wrapped in ``COALESCE((...), FALSE)`` so a
   negated predicate over a NULL column flags the same rows in SQL as
   the engine's two-valued ``evaluate`` does.
"""

import re

import pytest

from repro.brm.datatypes import DataType, DataTypeKind
from repro.executor import MemoryBackend, SqliteBackend, compile_rules
from repro.executor.harness import load_dataset
from repro.mapper import MappingOptions, map_schema
from repro.relational.constraints import CheckConstraint
from repro.relational.predicates import Compare
from repro.relational.schema import (
    Attribute,
    Domain,
    Relation,
    RelationalSchema,
)
from repro.sql.pseudo import render_constraint

GUARD = re.compile(r"\w+ IS NOT NULL")


class TestGuardAgreement:
    """Pseudo-SQL and compiled checkers guard the same columns."""

    @pytest.fixture(scope="class")
    def mapped(self, fig6):
        # The DEFAULT null policy keeps optional roles as nullable
        # columns, so the fig. 6 mapping exercises every guard site.
        return map_schema(fig6, MappingOptions()).relational

    def test_view_constraint_guards_match(self, mapped):
        compiled = {
            rule.name: rule
            for rule in compile_rules(mapped)
        }
        for constraint in mapped.view_constraints():
            pseudo_guards = set(GUARD.findall(render_constraint(constraint)))
            checker_guards = set(
                GUARD.findall(compiled[constraint.name].sql)
            )
            assert pseudo_guards == checker_guards

    def test_nullable_columns_get_no_not_null_rule(self, mapped):
        rules = compile_rules(mapped)
        guarded = {
            (rule.relation, rule.column)
            for rule in rules
            if rule.kind == "not-null"
        }
        for relation in mapped.relations:
            for attribute in relation.attributes:
                expected = not attribute.nullable
                assert (
                    (relation.name, attribute.name) in guarded
                ) is expected

    def test_foreign_keys_skip_null_sources(self, mapped):
        for rule in compile_rules(mapped):
            if rule.kind != "foreign-key":
                continue
            for column in rule.constraint.columns:
                assert f"s.{column} IS NOT NULL AND" in rule.sql


class TestTwoValuedAgreement:
    """A negated check over a NULL column flags the same rows on the
    engine and on SQL — the COALESCE collapse in action."""

    @pytest.fixture()
    def flag_schema(self):
        schema = RelationalSchema("flags")
        schema.add_domain(
            Domain("D_Flag", DataType(DataTypeKind.CHAR, 1))
        )
        schema.add_domain(
            Domain("D_Id", DataType(DataTypeKind.NUMERIC, 4))
        )
        schema.add_relation(
            Relation(
                "Paper",
                (
                    Attribute("Id", "D_Id"),
                    Attribute("Flag", "D_Flag", nullable=True),
                ),
            )
        )
        schema.add_constraint(
            CheckConstraint(
                "C_CHK$_flag",
                relation="Paper",
                predicate=Compare("Flag", "=", "Y"),
            )
        )
        return schema

    def test_null_flag_verdicts_agree(self, flag_schema):
        # Row 1 satisfies Flag='Y'; row 2 violates it outright; row 3
        # is the three-valued trap: the checker negates the predicate,
        # and ``NOT (NULL = 'Y')`` is *unknown* in raw SQL (violation
        # silently missed) but false-collapsed by the COALESCE
        # wrapping, matching the engine's two-valued verdict that a
        # NULL flag fails the comparison.
        dataset = {
            "Paper": [
                {"Id": 1, "Flag": "Y"},
                {"Id": 2, "Flag": "N"},
                {"Id": 3, "Flag": None},
            ]
        }
        (rule,) = [
            r for r in compile_rules(flag_schema) if r.kind == "check"
        ]
        verdicts = {}
        for backend in (MemoryBackend(), SqliteBackend()):
            try:
                load_dataset(backend, flag_schema, dataset)
                violation = backend.run_rule(rule)
                verdicts[backend.name] = (
                    0 if violation is None else violation.count
                )
            finally:
                backend.close()
        assert verdicts["memory"] == verdicts["sqlite"] == 2

    def test_unwrapped_sql_would_disagree(self, flag_schema):
        # The regression this file pins: strip the COALESCE wrapping
        # and SQLite's three-valued NOT misses the NULL-flag row the
        # engine reports.
        (rule,) = [
            r for r in compile_rules(flag_schema) if r.kind == "check"
        ]
        naked_sql = (
            rule.sql
            .replace("COALESCE(( ", "( ")
            .replace(" ), FALSE)", " )")
        )
        assert naked_sql != rule.sql
        dataset = {"Paper": [{"Id": 2, "Flag": "N"}, {"Id": 3, "Flag": None}]}
        backend = SqliteBackend()
        try:
            load_dataset(backend, flag_schema, dataset)
            wrapped = backend._connection.execute(rule.sql).fetchall()
            naked = backend._connection.execute(naked_sql).fetchall()
        finally:
            backend.close()
        assert len(wrapped) == 2  # both rows: 'N' and NULL
        assert len(naked) == 1  # three-valued SQL misses the NULL row
