"""Shapes of the compiled checker queries.

Every lossless rule compiles to one SQL query that returns the
violating rows — empty result iff the rule holds.  These tests pin
the query shapes (guards, grouping, negation wrapping) the backends
and the parity property tests rely on.
"""

import pytest

from repro.executor import CompiledRule, RULE_KINDS, compile_rules
from repro.executor.compile import sql_predicate, view_aliases
from repro.mapper import MappingOptions, SublinkPolicy, map_schema
from repro.relational.predicates import (
    Compare,
    InValues,
    IsNull,
    Not,
    NotNull,
    Or,
)


def rules_by_kind(schema, options=None):
    result = map_schema(schema, options or MappingOptions())
    grouped = {}
    for rule in compile_rules(result.relational):
        grouped.setdefault(rule.kind, []).append(rule)
    return grouped


class TestRuleInventory:
    def test_fig6_covers_the_default_kinds(self, fig6):
        grouped = rules_by_kind(fig6)
        assert set(grouped) == {
            "not-null", "primary-key", "candidate-key", "foreign-key",
            "equality-view",
        }

    def test_together_alternative_adds_checks(self, fig6):
        grouped = rules_by_kind(
            fig6, MappingOptions(sublink_policy=SublinkPolicy.TOGETHER)
        )
        assert "check" in grouped

    def test_total_m2m_role_compiles_to_subset_view(self, authorship_schema):
        grouped = rules_by_kind(authorship_schema)
        (rule,) = grouped["subset-view"]
        assert rule.sql.count("EXCEPT") == 1
        assert rule.relation == "Paper"

    def test_every_kind_is_declared(self, cris):
        for rules in rules_by_kind(cris).values():
            for rule in rules:
                assert rule.kind in RULE_KINDS

    def test_unknown_kind_is_rejected(self):
        with pytest.raises(ValueError, match="unknown rule kind"):
            CompiledRule("X", "bogus", "R", "SELECT 1")


class TestQueryShapes:
    def test_not_null_selects_null_rows(self, fig6):
        for rule in rules_by_kind(fig6)["not-null"]:
            assert rule.sql == (
                f"SELECT * FROM {rule.relation} "
                f"WHERE {rule.column} IS NULL"
            )

    def test_keys_group_and_guard_nulls(self, cris):
        grouped = rules_by_kind(cris)
        for rule in grouped["primary-key"] + grouped["candidate-key"]:
            assert "GROUP BY" in rule.sql
            assert "HAVING COUNT(*) > 1" in rule.sql
            for column in rule.constraint.columns:
                assert f"{column} IS NOT NULL" in rule.sql

    def test_foreign_keys_probe_with_not_exists(self, cris):
        for rule in rules_by_kind(cris)["foreign-key"]:
            assert "NOT EXISTS" in rule.sql
            for column in rule.constraint.columns:
                assert f"s.{column} IS NOT NULL" in rule.sql
            assert rule.constraint.referenced_relation in rule.sql

    def test_equality_view_diffs_both_directions(self, fig6):
        (rule,) = rules_by_kind(fig6)["equality-view"]
        assert rule.sql.count("EXCEPT") == 2
        assert "'only-left'" in rule.sql
        assert "'only-right'" in rule.sql

    def test_checks_negate_the_predicate(self, fig6):
        grouped = rules_by_kind(
            fig6, MappingOptions(sublink_policy=SublinkPolicy.TOGETHER)
        )
        for rule in grouped["check"]:
            assert rule.sql.startswith(f"SELECT * FROM {rule.relation} ")
            assert " WHERE NOT " in rule.sql


class TestSqlPredicate:
    def test_comparisons_collapse_unknown_to_false(self):
        sql = sql_predicate(Compare("flag", "=", "Y"))
        assert sql == "COALESCE(( flag = 'Y' ), FALSE)"

    def test_in_values_collapse_unknown_to_false(self):
        sql = sql_predicate(InValues("grade", ("A", "B")))
        assert sql == "COALESCE(( grade IN ('A', 'B') ), FALSE)"

    def test_null_tests_are_rendered_verbatim(self):
        assert sql_predicate(IsNull("x")) == "( x IS NULL )"
        assert sql_predicate(NotNull("x")) == "( x IS NOT NULL )"

    def test_connectives_nest(self):
        sql = sql_predicate(
            Or((Not(IsNull("a")), Compare("b", ">", 1)))
        )
        assert sql == (
            "( ( NOT ( a IS NULL ) ) "
            "OR COALESCE(( b > 1 ), FALSE) )"
        )

    def test_view_aliases_are_positional(self):
        assert view_aliases(3) == ("v1", "v2", "v3")


class TestRuleDependencyRelations:
    """``CompiledRule.relations`` — the dependency set the incremental
    replay paths (injection matrix, COW verifier) key rule re-runs on.
    An under-approximation here would silently carry stale verdicts."""

    def test_single_relation_rules_depend_on_their_relation(self, cris):
        grouped = rules_by_kind(cris)
        for kind in ("not-null", "primary-key", "candidate-key"):
            for rule in grouped.get(kind, ()):
                assert rule.relations == frozenset({rule.relation})

    def test_foreign_keys_depend_on_both_sides(self, cris):
        grouped = rules_by_kind(cris)
        assert grouped["foreign-key"]
        for rule in grouped["foreign-key"]:
            assert rule.relation in rule.relations
            assert rule.constraint.referenced_relation in rule.relations
            assert len(rule.relations) <= 2

    def test_view_rules_depend_on_every_view_leg(self, fig6,
                                                 authorship_schema):
        for rule in rules_by_kind(fig6)["equality-view"]:
            assert rule.constraint.left.relation in rule.relations
            assert rule.constraint.right.relation in rule.relations
        for rule in rules_by_kind(authorship_schema)["subset-view"]:
            assert rule.constraint.subset.relation in rule.relations
            assert rule.constraint.superset.relation in rule.relations

    def test_every_dependency_is_a_real_relation(self, cris):
        result = map_schema(cris, MappingOptions())
        names = {r.name for r in result.relational.relations}
        for rule in compile_rules(result.relational):
            assert rule.relations <= names
