"""The ``repro validate`` subcommand: exit codes and report formats.

Extends the CLI's exit-code taxonomy: 0 valid, 5 ran on a fallback
backend, 6 invalid, 2 usage errors — each distinguishable by a
script without parsing the report.
"""

import io
import json

import pytest

from repro.cli import EXIT_DEGRADED, EXIT_INVALID, EXIT_OK, EXIT_USAGE, main
from repro.cris import figure6_schema
from repro.dsl import to_dsl
from repro.executor import duckdb_available


def run(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


@pytest.fixture
def schema_file(tmp_path):
    path = tmp_path / "figure6.ridl"
    path.write_text(to_dsl(figure6_schema()))
    return path


class TestExitCodes:
    def test_valid_schema_exits_0(self, schema_file):
        code, output = run(
            ["validate", str(schema_file), "--backend", "sqlite",
             "--scale", "150"]
        )
        assert code == EXIT_OK
        assert "result: OK" in output
        assert "detection matrix" in output

    def test_unavailable_backend_falls_back_and_exits_5(self, schema_file):
        if duckdb_available():
            pytest.skip("duckdb installed; fallback path not reachable")
        code, output = run(
            ["validate", str(schema_file), "--backend", "duckdb",
             "--scale", "100", "--no-inject"]
        )
        assert code == EXIT_DEGRADED
        assert "fell back" in output

    def test_auto_backend_never_degrades(self, schema_file):
        code, _ = run(
            ["validate", str(schema_file), "--scale", "100",
             "--no-inject"]
        )
        assert code == EXIT_OK

    def test_bad_backend_exits_2(self, schema_file):
        code, output = run(
            ["validate", str(schema_file), "--backend", "oracle-v5"]
        )
        assert code == EXIT_USAGE
        assert "invalid choice" in output

    def test_exit_codes_are_distinct(self):
        assert len({EXIT_OK, EXIT_DEGRADED, EXIT_INVALID, EXIT_USAGE}) == 4


class TestReportOutput:
    def test_json_format_is_parseable(self, schema_file):
        code, output = run(
            ["validate", str(schema_file), "--backend", "memory",
             "--scale", "100", "--format", "json"]
        )
        assert code == EXIT_OK
        decoded = json.loads(output)
        assert decoded["ok"] is True
        assert decoded["backend"]["used"] == "memory"
        assert decoded["matrix"]["diagonal"] is True

    def test_no_inject_skips_the_matrix(self, schema_file):
        _, output = run(
            ["validate", str(schema_file), "--backend", "memory",
             "--scale", "100", "--no-inject", "--format", "json"]
        )
        assert json.loads(output)["matrix"] is None

    def test_seed_is_reproducible(self, schema_file):
        argv = ["validate", str(schema_file), "--backend", "memory",
                "--scale", "100", "--seed", "13", "--format", "json"]
        first = json.loads(run(argv)[1])
        second = json.loads(run(argv)[1])
        first.pop("timings"), second.pop("timings")
        assert first == second

    def test_report_is_byte_identical_across_check_workers(self, schema_file):
        """Sharding the check phase is an execution detail: once the
        wall-clock timings are stripped, the JSON report must be
        byte-for-byte the same for every ``--check-workers`` count."""
        reports = []
        for workers in ("1", "2", "4"):
            argv = ["validate", str(schema_file), "--backend", "sqlite",
                    "--scale", "120", "--seed", "13",
                    "--check-workers", workers, "--format", "json"]
            code, output = run(argv)
            assert code == EXIT_OK
            decoded = json.loads(output)
            decoded.pop("timings")
            reports.append(json.dumps(decoded, sort_keys=True).encode())
        assert reports[0] == reports[1] == reports[2]

    def test_check_workers_is_recorded_in_timings(self, schema_file):
        _, output = run(
            ["validate", str(schema_file), "--backend", "memory",
             "--scale", "100", "--no-inject", "--check-workers", "3",
             "--format", "json"]
        )
        decoded = json.loads(output)
        # The memory backend cannot snapshot, so the check runs serial
        # and the report records the *effective* worker count.
        assert decoded["timings"]["check_workers"] == 1

    def test_trace_records_executor_spans(self, schema_file, tmp_path):
        trace = tmp_path / "trace.json"
        code, _ = run(
            ["validate", str(schema_file), "--backend", "memory",
             "--scale", "100", "--no-inject", "--trace", str(trace)]
        )
        assert code == EXIT_OK
        assert "executor.validate" in trace.read_text()

    def test_mapping_options_are_honoured(self, schema_file):
        _, output = run(
            ["validate", str(schema_file), "--backend", "memory",
             "--scale", "100", "--sublinks", "TOGETHER",
             "--format", "json"]
        )
        decoded = json.loads(output)
        assert decoded["ok"] is True
        assert "check" in decoded["rules"]
