"""Implied-rule pruning: ``prunable_rules`` soundness and the
``prune_implied`` harness/CLI path."""

import pytest

from repro.brm import SchemaBuilder, char
from repro.executor import run_validation
from repro.executor.compile import compile_rules, prunable_rules
from repro.mapper import map_schema
from repro.mapper.options import MappingOptions


def redundant_subset_schema():
    b = SchemaBuilder("Redundant")
    b.nolot("P")
    b.lot("Id", char(4)).identifier("P", "Id")
    b.lot("K", char(3)).lot("L", char(3)).lot("M", char(3))
    b.fact("f", ("P", "x"), ("K", "y"))
    b.fact("g", ("P", "x"), ("L", "y"))
    b.fact("h", ("P", "x"), ("M", "y"))
    b.unique(("f", "x")).unique(("g", "x")).unique(("h", "x"))
    b.subset(("h", "x"), ("g", "x"), name="S1")
    b.subset(("g", "x"), ("f", "x"), name="S2")
    b.subset(("h", "x"), ("f", "x"), name="S3")
    return b.build()


class TestPrunableRules:
    def test_transitively_implied_subset_rule_is_pruned(self):
        result = map_schema(redundant_subset_schema(), MappingOptions())
        pruned = prunable_rules(result)
        assert len(pruned) == 1
        (reason,) = pruned.values()
        assert "S3" in reason and "S1" in reason and "S2" in reason
        # The premises' own rules survive.
        kept = compile_rules(
            result.relational, prune_implied=True, mapping=result
        )
        assert set(pruned).isdisjoint(rule.name for rule in kept)
        full = compile_rules(result.relational)
        assert len(full) - len(kept) == len(pruned)

    def test_mutually_implied_triangle_is_not_fully_pruned(self):
        # E1, E2 and E3 each follow from the other two: a greedy
        # prune must keep enough of the cycle enforced to ground
        # every pruned proof — never all three.
        b = SchemaBuilder("Mutual")
        b.nolot("P")
        b.lot("Id", char(4)).identifier("P", "Id")
        b.lot("K", char(3)).lot("L", char(3)).lot("M", char(3))
        b.fact("f", ("P", "x"), ("K", "y"))
        b.fact("g", ("P", "x"), ("L", "y"))
        b.fact("h", ("P", "x"), ("M", "y"))
        b.unique(("f", "x")).unique(("g", "x")).unique(("h", "x"))
        b.equality(("f", "x"), ("g", "x"), name="E1")
        b.equality(("g", "x"), ("h", "x"), name="E2")
        b.equality(("f", "x"), ("h", "x"), name="E3")
        result = map_schema(b.build(), MappingOptions())
        pruned = prunable_rules(result)
        assert len(pruned) == 1  # E1's view rule; E2/E3 keep running
        (reason,) = pruned.values()
        assert "E1" in reason
        kept_names = {
            rule.name
            for rule in compile_rules(
                result.relational, prune_implied=True, mapping=result
            )
        }
        full_names = {
            rule.name for rule in compile_rules(result.relational)
        }
        assert kept_names == full_names - set(pruned)
        # Two of the three equality-view checkers survive.
        assert (
            len([n for n in kept_names if n.startswith("C_EE$")]) == 2
        )

    def test_pseudo_only_premise_blocks_pruning(self):
        # U1 is implied by the 1..1 frequency bound, but frequency
        # constraints only become pseudo-SQL — never a relational
        # rule — so the key rule for U1 must keep running.
        b = SchemaBuilder("Freq")
        b.nolot("P")
        b.lot("Id", char(4)).identifier("P", "Id")
        b.lot("K", char(3))
        b.fact("f", ("P", "x"), ("K", "y"))
        b.unique(("f", "x"), name="UQ1")
        b.frequency(("f", "x"), 1, 1, name="F1")
        result = map_schema(b.build(), MappingOptions())
        assert prunable_rules(result) == {}

    def test_clean_schema_prunes_nothing(self):
        from repro.cris.schema import cris_schema

        result = map_schema(cris_schema(), MappingOptions())
        assert prunable_rules(result) == {}

    def test_compile_rules_requires_mapping_for_pruning(self):
        result = map_schema(redundant_subset_schema(), MappingOptions())
        with pytest.raises(ValueError, match="MappingResult"):
            compile_rules(result.relational, prune_implied=True)


class TestHarnessPruning:
    def test_pruned_matrix_matches_unpruned_modulo_pruned_rows(self):
        schema = redundant_subset_schema()
        pruned_report = run_validation(
            schema, backend="memory", scale=300, prune_implied=True
        )
        full_report = run_validation(schema, backend="memory", scale=300)
        assert pruned_report.ok and full_report.ok
        assert pruned_report.pruned_rules
        pruned_names = set(pruned_report.pruned_rules)
        full_rows = {
            (row.kind, row.rule): row.detected
            for row in full_report.matrix.rows
            if row.rule not in pruned_names
        }
        pruned_rows = {
            (row.kind, row.rule): row.detected
            for row in pruned_report.matrix.rows
        }
        assert pruned_rows == full_rows
        assert sum(
            pruned_report.rule_counts.values()
        ) + len(pruned_names) == sum(full_report.rule_counts.values())

    def test_report_dict_records_pruned_rules_with_proofs(self):
        report = run_validation(
            redundant_subset_schema(),
            backend="memory",
            scale=200,
            inject=False,
            prune_implied=True,
        )
        payload = report.as_dict()
        assert payload["pruned_rules"] == report.pruned_rules
        assert all(
            "proof" in reason or "implied" in reason
            for reason in payload["pruned_rules"].values()
        )
        assert "pruned" in report.render()

    def test_pruning_off_by_default(self):
        report = run_validation(
            redundant_subset_schema(),
            backend="memory",
            scale=200,
            inject=False,
        )
        assert report.pruned_rules == {}
        assert "pruned" not in report.render()


class TestCliFlag:
    def test_validate_accepts_prune_implied(self, tmp_path, capsys):
        from repro.cli import main
        from repro.dsl import to_dsl

        source = tmp_path / "redundant.ridl"
        source.write_text(to_dsl(redundant_subset_schema()))
        code = main(
            [
                "validate",
                str(source),
                "--backend",
                "memory",
                "--scale",
                "200",
                "--no-inject",
                "--prune-implied",
                "--format",
                "json",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert '"pruned_rules"' in out
