"""Shared schemas for the executor suite.

Three fixtures cover every lossless-rule kind between them:

* ``fig6`` / ``cris`` — the paper's own schemas (keys, foreign keys,
  not-null, equality views; the TOGETHER alternative adds checks).
* ``authorship_schema`` — a total role on the many-to-many side, the
  shape the mapper turns into a C_SUB$ subset-view constraint
  (section 4.3), which neither paper schema produces by default.
"""

import pytest

from repro.brm import SchemaBuilder, char
from repro.cris import cris_schema, figure6_schema
from repro.executor import duckdb_available

requires_duckdb = pytest.mark.skipif(
    not duckdb_available(), reason="duckdb is not installed"
)


@pytest.fixture(scope="session")
def fig6():
    return figure6_schema()


@pytest.fixture(scope="session")
def cris():
    return cris_schema()


def build_authorship_schema():
    b = SchemaBuilder("authorship")
    b.nolot("Paper").lot("Paper_Id", char(6)).lot_nolot("Person", char(30))
    b.identifier("Paper", "Paper_Id")
    b.fact(
        "authors",
        ("Paper", "written_by"),
        ("Person", "author_of"),
        unique="pair",
        total="first",
    )
    return b.build()


@pytest.fixture(scope="session")
def authorship_schema():
    return build_authorship_schema()
