"""Backend parity: every backend reports the same violation sets.

The in-memory engine is the semantic reference; the SQL backends run
the same compiled rules through a real engine.  On any state — valid
or surgically mutated — all backends must agree on exactly which
rules are violated, or the harness's verdicts would depend on where
it happens to run.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cris import figure6_schema
from repro.executor import (
    MemoryBackend,
    SqliteBackend,
    compile_rules,
    dataset_of,
    load_dataset,
)
from repro.executor.backends import DuckDBBackend
from repro.mapper import MappingOptions, NullPolicy, SublinkPolicy, map_schema
from repro.robustness import plan_injections
from repro.workloads import generate_bulk_population
from tests.executor.conftest import build_authorship_schema, requires_duckdb

OPTION_AXIS = (
    MappingOptions(),
    MappingOptions(sublink_policy=SublinkPolicy.TOGETHER),
    MappingOptions(sublink_policy=SublinkPolicy.INDICATOR),
    MappingOptions(null_policy=NullPolicy.NOT_ALLOWED),
    MappingOptions(
        null_policy=NullPolicy.NOT_IN_KEYS,
        sublink_policy=SublinkPolicy.INDICATOR,
    ),
)


def violation_sets(schema, options, seed):
    """Violated-rule sets per backend, on the valid state and on
    every planned injection."""
    result = map_schema(schema, options)
    rules = compile_rules(result.relational)
    population = generate_bulk_population(
        schema, target_rows=150, seed=seed
    )
    canonical = result.canonicalize(result.state.to_canonical(population))
    dataset = dataset_of(result.state_map.forward(canonical))
    injections = plan_injections(
        result.relational, rules, dataset, seed=seed
    )
    states = [("valid", dataset)] + [
        (injection.kind, injection.dataset) for injection in injections
    ]
    per_backend = {}
    for backend_type in (MemoryBackend, SqliteBackend):
        backend = backend_type()
        verdicts = {}
        try:
            for label, state in states:
                load_dataset(backend, result.relational, state)
                verdicts[label] = frozenset(
                    violation.rule for violation in backend.check(rules)
                )
        finally:
            backend.close()
        per_backend[backend.name] = verdicts
    return per_backend


class TestMemorySqliteParity:
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        options=st.sampled_from(OPTION_AXIS),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_fig6_verdicts_agree(self, options, seed):
        per_backend = violation_sets(figure6_schema(), options, seed)
        assert per_backend["memory"] == per_backend["sqlite"]

    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**16))
    def test_subset_view_verdicts_agree(self, seed):
        per_backend = violation_sets(
            build_authorship_schema(), MappingOptions(), seed
        )
        assert per_backend["memory"] == per_backend["sqlite"]
        assert any(
            label != "valid" for label in per_backend["memory"]
        ), "no injection was planned"


@requires_duckdb
class TestDuckDBParity:
    @pytest.mark.parametrize(
        "options", OPTION_AXIS, ids=lambda o: repr(o)[:40]
    )
    def test_fig6_verdicts_agree(self, options):
        schema = figure6_schema()
        result = map_schema(schema, options)
        rules = compile_rules(result.relational)
        population = generate_bulk_population(
            schema, target_rows=150, seed=7
        )
        canonical = result.canonicalize(
            result.state.to_canonical(population)
        )
        dataset = dataset_of(result.state_map.forward(canonical))
        injections = plan_injections(
            result.relational, rules, dataset, seed=7
        )
        states = [dataset] + [i.dataset for i in injections]
        for state in states:
            verdicts = []
            for backend in (MemoryBackend(), DuckDBBackend()):
                try:
                    load_dataset(backend, result.relational, state)
                    verdicts.append(
                        frozenset(v.rule for v in backend.check(rules))
                    )
                finally:
                    backend.close()
            assert verdicts[0] == verdicts[1]
