"""Chaos tests: deterministic fault injection against mapping sessions.

The acceptance bar for the fault-tolerant mapper: under injected
faults (a raising rule, a state-corrupting rule, guard-budget
exhaustion) a best-effort session still completes, the corrupted step
is rolled back so the final relational schema equals the no-fault
run, and the health report names every quarantined rule.
"""

import pytest

from repro.cris import figure6_schema
from repro.errors import CheckpointError, MappingError
from repro.mapper import Rule, map_schema
from repro.robustness import (
    Fault,
    FaultInjectedError,
    FaultInjector,
    INJECTOR,
    inject,
)


def expert_noop(name):
    """A harmless expert rule — the chaos target."""
    return Rule(
        name, lambda s: f"fired:{name}" not in s.flags, lambda s: None
    )


def relation_names(result):
    return {r.name for r in result.relational.relations}


@pytest.fixture()
def baseline():
    return map_schema(figure6_schema(), extra_rules=(expert_noop("tweak"),))


class TestRaisingRuleFault:
    def test_best_effort_completes_and_matches_baseline(self, baseline):
        with inject(Fault("rule:tweak", kind="raise")):
            result = map_schema(
                figure6_schema(),
                extra_rules=(expert_noop("tweak"),),
                robustness="best-effort",
            )
        assert relation_names(result) == relation_names(baseline)
        assert result.sql("sql2") == baseline.sql("sql2")
        assert result.health.quarantined_rule_names() == ("tweak",)
        assert not result.health.ok
        assert any(
            entry.point == "rule:tweak" for entry in result.health.rolled_back
        )

    def test_strict_aborts_on_the_same_fault(self):
        with inject(Fault("rule:tweak", kind="raise")):
            with pytest.raises(MappingError):
                map_schema(
                    figure6_schema(), extra_rules=(expert_noop("tweak"),)
                )


class TestCorruptingRuleFault:
    def test_corruption_rolled_back_schema_identical(self, baseline):
        with inject(Fault("rule:tweak", kind="corrupt")):
            result = map_schema(
                figure6_schema(),
                extra_rules=(expert_noop("tweak"),),
                robustness="best-effort",
            )
        assert relation_names(result) == relation_names(baseline)
        assert result.sql("sql2") == baseline.sql("sql2")
        assert result.map_report() == baseline.map_report()
        assert result.health.quarantined_rule_names() == ("tweak",)
        # The corrupted maps were rolled back with everything else.
        assert len(result.state.forward_maps) == len(
            result.state.backward_maps
        )

    def test_custom_corruption_detected(self, baseline):
        def drop_facts(state):
            state.schema._fact_types.clear()

        with inject(
            Fault("rule:tweak", kind="corrupt", mutate=drop_facts)
        ):
            result = map_schema(
                figure6_schema(),
                extra_rules=(expert_noop("tweak"),),
                robustness="best-effort",
            )
        assert result.sql("sql2") == baseline.sql("sql2")
        assert result.health.quarantined_rule_names() == ("tweak",)


class TestBudgetExhaustionFault:
    def test_session_completes_degraded(self, baseline):
        with inject(Fault("rule:tweak", kind="budget")):
            result = map_schema(
                figure6_schema(),
                extra_rules=(expert_noop("tweak"),),
                robustness="best-effort",
            )
        assert relation_names(result) == relation_names(baseline)
        assert not result.health.ok
        assert any("budget" in d for d in result.health.degraded)


class TestMultipleFaults:
    def test_every_quarantined_rule_is_named(self, baseline):
        rules = (
            expert_noop("tweak"),
            expert_noop("polish"),
            expert_noop("shine"),
        )
        with inject(
            Fault("rule:tweak", kind="raise"),
            Fault("rule:shine", kind="corrupt"),
        ):
            result = map_schema(
                figure6_schema(), extra_rules=rules, robustness="best-effort"
            )
        assert set(result.health.quarantined_rule_names()) == {
            "tweak",
            "shine",
        }
        assert "fired:polish" in result.state.flags
        assert result.sql("sql2") == baseline.sql("sql2")
        report = result.health_report()
        assert "tweak" in report and "shine" in report


class TestPhaseFaults:
    def test_materialize_constraint_fault_fails_cleanly(self):
        with inject(Fault("materialize.constraints", kind="raise")):
            with pytest.raises(FaultInjectedError):
                map_schema(figure6_schema())

    def test_optional_phase_fault_degrades_best_effort(self, baseline):
        with inject(Fault("phase:combines", kind="raise")):
            result = map_schema(
                figure6_schema(), robustness="best-effort"
            )
        assert result.relational.relations
        assert any("combines" in d for d in result.health.degraded)

    def test_required_phase_fault_fails_even_best_effort(self):
        with inject(Fault("phase:plan", kind="raise")):
            with pytest.raises(FaultInjectedError):
                map_schema(figure6_schema(), robustness="best-effort")


class TestFaultDeterminism:
    def test_trigger_on_nth_hit(self):
        injector = FaultInjector()
        fault = Fault("p", kind="raise", at=3)
        injector.arm(fault)
        injector.reach("p")
        injector.reach("p")
        with pytest.raises(FaultInjectedError):
            injector.reach("p")
        injector.reach("p")  # times=1: spent after one trigger
        assert fault.hits == 4
        assert fault.triggered == 1

    def test_times_bounds_triggers(self):
        injector = FaultInjector()
        injector.arm(Fault("p", kind="raise", times=2))
        for _ in range(2):
            with pytest.raises(FaultInjectedError):
                injector.reach("p")
        injector.reach("p")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            Fault("p", kind="explode")

    def test_inject_disarms_on_exit(self):
        before = len(INJECTOR.active)
        with inject(Fault("p", kind="raise")):
            assert len(INJECTOR.active) == before + 1
        assert len(INJECTOR.active) == before

    def test_chaos_runs_are_reproducible(self):
        outcomes = []
        for _ in range(2):
            with inject(Fault("rule:tweak", kind="raise")):
                result = map_schema(
                    figure6_schema(),
                    extra_rules=(expert_noop("tweak"),),
                    robustness="best-effort",
                )
            outcomes.append(
                (
                    result.health.quarantined_rule_names(),
                    result.sql("sql2"),
                )
            )
        assert outcomes[0] == outcomes[1]


class TestFaultsWithCheckpoints:
    def test_injected_phase_failure_then_resume(self):
        from repro.robustness import CheckpointManager

        baseline = map_schema(figure6_schema())
        manager = CheckpointManager()
        with inject(Fault("phase:materialize", kind="raise")):
            with pytest.raises(CheckpointError):
                map_schema(figure6_schema(), checkpoints=manager)
        result = map_schema(figure6_schema(), checkpoints=manager)
        assert result.sql("sql2") == baseline.sql("sql2")
