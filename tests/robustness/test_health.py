"""The session health report."""

from repro.robustness import HealthReport


class TestHealthReport:
    def test_fresh_report_is_ok(self):
        health = HealthReport()
        assert health.ok
        assert health.summary() == {
            "quarantined_rules": 0,
            "rolled_back_steps": 0,
            "degraded_options": 0,
            "resumed_phases": 0,
            "guarded_steps": 0,
        }
        assert "OK" in health.render()

    def test_recording_degrades(self):
        health = HealthReport(mode="best-effort")
        health.quarantine("bad-rule", "action raised ValueError('x')")
        health.rollback("rule:bad-rule", "action raised ValueError('x')")
        health.degrade("mapping option phase 'combines' skipped")
        health.resumed_phases.append("binary")
        assert not health.ok
        summary = health.summary()
        assert summary["quarantined_rules"] == 1
        assert summary["rolled_back_steps"] == 1
        assert summary["degraded_options"] == 1
        assert summary["resumed_phases"] == 1

    def test_render_names_everything(self):
        health = HealthReport(mode="best-effort")
        health.quarantine("bad-rule", "boom")
        health.rollback("rule:bad-rule", "boom")
        health.degrade("combines skipped")
        health.resumed_phases.append("plan")
        health.time_guard("rule:canonicalize", 0.001)
        text = health.render()
        assert "DEGRADED" in text
        assert "bad-rule: boom" in text
        assert "combines skipped" in text
        assert "plan" in text
        assert "1 validations" in text

    def test_guard_timings_accumulate(self):
        health = HealthReport()
        health.time_guard("rule:x", 0.5)
        health.time_guard("rule:x", 0.25)
        assert health.guard_timings["rule:x"] == 0.75
        assert health.guarded_steps == 2
        assert health.ok  # timings alone do not degrade a session
