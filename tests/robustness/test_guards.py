"""Per-step invariant guards: snapshot, rollback, quarantine."""

import pytest

from repro.brm import SchemaBuilder, char
from repro.cris import figure6_schema
from repro.errors import QuarantinedRuleError, StepBudgetExceeded
from repro.mapper import (
    MappingOptions,
    MappingState,
    Rule,
    TransformationEngine,
    map_schema,
)
from repro.robustness import (
    GuardedExecutor,
    RecoveryMode,
    check_state_invariants,
    resolve_mode,
)


def fresh_state(schema=None):
    schema = schema or figure6_schema()
    return MappingState(
        schema=schema.copy(), options=MappingOptions(), original=schema
    )


def once(name):
    return lambda s: f"fired:{name}" not in s.flags


class TestStateSnapshot:
    def test_snapshot_restores_schema_and_trail(self):
        state = fresh_state()
        snapshot = state.snapshot()
        state.record("bogus", "binary-binary", "x", "detail")
        state.flags.add("fired:bogus")
        state.forward_maps.append(lambda p: p)
        state.schema._object_types.clear()
        state.restore(snapshot)
        assert state.steps == []
        assert state.flags == set()
        assert state.forward_maps == []
        assert {t.name for t in state.schema.object_types} == {
            t.name for t in figure6_schema().object_types
        }

    def test_snapshot_survives_repeated_restores(self):
        state = fresh_state()
        snapshot = state.snapshot()
        for _ in range(2):
            state.schema._fact_types.clear()
            state.restore(snapshot)
            assert state.schema.fact_types


class TestInvariants:
    def test_healthy_state_has_no_violations(self):
        assert check_state_invariants(fresh_state()) == []

    def test_map_asymmetry_detected(self):
        state = fresh_state()
        state.forward_maps.append(lambda p: p)
        violations = check_state_invariants(state)
        assert any("symmetry" in v for v in violations)

    def test_roundtrip_failure_detected(self):
        state = fresh_state()
        # A forward map that invents instances the backward map cannot
        # remove breaks the lossless round trip.
        def forward(population):
            population = population.copy()
            population.add_instance("Person", "ghost")
            return population

        state.add_population_maps(forward, lambda p: p)
        violations = check_state_invariants(state)
        assert any("round-trip" in v for v in violations)

    def test_corrupted_schema_reported_not_raised(self):
        state = fresh_state()
        state.schema._object_types.clear()  # dangling facts remain
        violations = check_state_invariants(state)
        assert violations
        assert any(
            "analyzable" in v or "correctness" in v for v in violations
        )


class TestGuardedExecutor:
    def test_successful_firing_is_kept(self):
        state = fresh_state()
        executor = GuardedExecutor(RecoveryMode.BEST_EFFORT)
        rule = Rule("noop", once("noop"), lambda s: None)
        assert executor.execute(rule, state) is True
        assert "fired:noop" in state.flags
        assert executor.health.ok

    def test_raising_rule_rolled_back_and_quarantined(self):
        state = fresh_state()
        executor = GuardedExecutor(RecoveryMode.BEST_EFFORT)

        def action(s):
            s.record("partial", "binary-binary", "x", "mutates then dies")
            raise RuntimeError("boom")

        rule = Rule("bad", once("bad"), action)
        assert executor.execute(rule, state) is False
        assert state.steps == []  # the partial mutation was undone
        assert "fired:bad" not in state.flags
        assert executor.is_quarantined("bad")
        assert executor.health.quarantined_rule_names() == ("bad",)

    def test_corrupting_rule_rolled_back(self):
        state = fresh_state()
        executor = GuardedExecutor(RecoveryMode.BEST_EFFORT)
        rule = Rule(
            "corrupt",
            once("corrupt"),
            lambda s: s.forward_maps.append(lambda p: p),
        )
        assert executor.execute(rule, state) is False
        assert state.forward_maps == []
        assert executor.is_quarantined("corrupt")

    def test_strict_mode_raises_after_rollback(self):
        state = fresh_state()
        executor = GuardedExecutor(RecoveryMode.STRICT)
        rule = Rule(
            "bad", once("bad"), lambda s: (_ for _ in ()).throw(ValueError("x"))
        )
        with pytest.raises(QuarantinedRuleError) as excinfo:
            executor.execute(rule, state)
        assert excinfo.value.rule_name == "bad"
        assert state.steps == []

    def test_budget_exhaustion_degrades_then_refuses(self):
        state = fresh_state()
        executor = GuardedExecutor(
            RecoveryMode.BEST_EFFORT, rollback_budget=1
        )
        bad = Rule(
            "bad1", once("bad1"),
            lambda s: (_ for _ in ()).throw(ValueError("x")),
        )
        assert executor.execute(bad, state) is False  # spends the budget
        assert executor.exhausted
        assert any("budget" in d for d in executor.health.degraded)
        worse = Rule(
            "bad2", once("bad2"),
            lambda s: (_ for _ in ()).throw(ValueError("y")),
        )
        with pytest.raises(QuarantinedRuleError):
            executor.execute(worse, state)

    def test_guard_timings_recorded(self):
        state = fresh_state()
        executor = GuardedExecutor(RecoveryMode.STRICT)
        executor.execute(Rule("noop", once("noop"), lambda s: None), state)
        assert "rule:noop" in executor.health.guard_timings
        assert executor.health.guarded_steps == 1


class TestEngineWithExecutor:
    def test_quarantined_rule_skipped_and_session_quiesces(self):
        state = fresh_state()
        executor = GuardedExecutor(RecoveryMode.BEST_EFFORT)
        engine = TransformationEngine()
        engine.add_rule(
            Rule(
                "always-bad",
                lambda s: "fired:always-bad" not in s.flags,
                lambda s: (_ for _ in ()).throw(RuntimeError("boom")),
            )
        )
        engine.run(state, executor=executor)
        fired = {f for f in state.flags if f.startswith("fired:")}
        assert fired == {
            "fired:restrict-scope",
            "fired:canonicalize",
            "fired:sublink-options",
        }
        assert executor.is_quarantined("always-bad")

    def test_budget_raises_step_budget_exceeded_with_history(self):
        state = fresh_state()
        engine = TransformationEngine(
            [Rule("loop", lambda s: True, lambda s: None)]
        )
        with pytest.raises(StepBudgetExceeded) as excinfo:
            engine.run(state, max_firings=7)
        assert excinfo.value.limit == 7
        assert excinfo.value.history == ("loop",) * 7
        assert "loop" in str(excinfo.value)


class TestRuleFireFlag:
    def test_flag_only_recorded_after_success(self):
        state = fresh_state()
        rule = Rule(
            "dies", once("dies"),
            lambda s: (_ for _ in ()).throw(RuntimeError("x")),
        )
        with pytest.raises(RuntimeError):
            rule.fire(state)
        assert "fired:dies" not in state.flags

    def test_self_marking_action_unmarked_on_failure(self):
        # An action that sets its own fired flag and then raises must
        # not stay marked, or a retry after rollback would skip it.
        state = fresh_state()

        def action(s):
            s.flags.add("fired:eager")
            raise RuntimeError("x")

        rule = Rule("eager", once("eager"), action)
        with pytest.raises(RuntimeError):
            rule.fire(state)
        assert "fired:eager" not in state.flags
        assert rule.when(state)  # still eligible for a retry


class TestResolveMode:
    def test_accepts_enum_string_and_none(self):
        assert resolve_mode(None) is RecoveryMode.STRICT
        assert resolve_mode("strict") is RecoveryMode.STRICT
        assert resolve_mode("best-effort") is RecoveryMode.BEST_EFFORT
        assert resolve_mode("BEST_EFFORT") is RecoveryMode.BEST_EFFORT
        assert (
            resolve_mode(RecoveryMode.BEST_EFFORT)
            is RecoveryMode.BEST_EFFORT
        )

    def test_rejects_unknown(self):
        with pytest.raises(ValueError):
            resolve_mode("yolo")


class TestMapSchemaStrictDefault:
    def test_bad_expert_rule_aborts_strict_session(self):
        bad = Rule(
            "bad-expert",
            lambda s: "fired:bad-expert" not in s.flags,
            lambda s: (_ for _ in ()).throw(RuntimeError("boom")),
        )
        with pytest.raises(QuarantinedRuleError):
            map_schema(figure6_schema(), extra_rules=(bad,))

    def test_clean_session_health_is_ok(self):
        result = map_schema(figure6_schema())
        assert result.health.ok
        assert result.health.guarded_steps >= 3
        assert "OK" in result.health_report()
