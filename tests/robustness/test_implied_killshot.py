"""Kill-shot: static ``IMPLIED`` verdicts vs. dynamic counterexamples.

For every ``IMPLIED`` verdict the engine produces on CRIS, the
shipped examples and a synthetic redundancy-rich schema, the
injection machinery must be *unable* to construct a surgical
violation of the implied rule that leaves all of its implying rules
satisfied.  Every candidate mutation that breaks an implied rule's
checker must also break at least one premise's checker — the static
proof discharged by exhaustive dynamic search.
"""

import itertools
import random
from pathlib import Path

from repro.analyzer.implication import check_implications
from repro.brm import SchemaBuilder, char
from repro.cris.schema import cris_schema
from repro.dsl import parse
from repro.executor.compile import compile_rules
from repro.executor.harness import dataset_of
from repro.mapper import map_schema
from repro.mapper.options import MappingOptions
from repro.mapper.trace import KIND_RELATIONAL
from repro.robustness.violations import (
    MAX_CANDIDATES,
    MUTATOR_KINDS,
    MUTATORS,
    default_verifier,
)
from repro.workloads import generate_bulk_population

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"
SEED = 11


def synthetic_redundant_schema():
    b = SchemaBuilder("Redundant")
    b.nolot("P")
    b.lot("Id", char(4)).identifier("P", "Id")
    b.lot("K", char(3)).lot("L", char(3)).lot("M", char(3))
    b.fact("f", ("P", "x"), ("K", "y"))
    b.fact("g", ("P", "x"), ("L", "y"))
    b.fact("h", ("P", "x"), ("M", "y"))
    b.unique(("f", "x")).unique(("g", "x")).unique(("h", "x"))
    # S3 is implied by the S1;S2 chain.
    b.subset(("h", "x"), ("g", "x"), name="S1")
    b.subset(("g", "x"), ("f", "x"), name="S2")
    b.subset(("h", "x"), ("f", "x"), name="S3")
    return b.build()


def schemas_under_test():
    yield "cris", cris_schema()
    yield "conference", parse(
        (EXAMPLES / "conference.ridl").read_text()
    )
    yield "synthetic", synthetic_redundant_schema()


def relational_rules_for(result, constraint_name):
    """The relational checker rules the trace generated for one
    canonical-schema constraint."""
    names = set()
    for step in result.steps:
        if step.kind == KIND_RELATIONAL and step.target == constraint_name:
            names.update(step.lossless_rules)
    return names


def test_no_surgical_violation_of_any_implied_rule():
    exercised = 0
    for schema_name, schema in schemas_under_test():
        result = map_schema(schema, MappingOptions())
        implications = check_implications(result.canonical)
        if not implications.implied:
            continue
        rules = compile_rules(result.relational)
        by_name = {rule.name: rule for rule in rules}
        population = generate_bulk_population(
            schema, target_rows=150, seed=SEED
        )
        canonical = result.canonicalize(
            result.state.to_canonical(population)
        )
        dataset = dataset_of(result.state_map.forward(canonical))
        for verdict in implications.implied:
            implied_rules = relational_rules_for(
                result, verdict.subject
            ) & set(by_name)
            if not implied_rules:
                continue  # constraint never relationally enforced
            premise_rules = set()
            for premise in verdict.proof.premises:
                premise_rules |= relational_rules_for(result, premise)
            premise_rules &= set(by_name)
            subset = tuple(
                by_name[name]
                for name in sorted(implied_rules | premise_rules)
            )
            verify = default_verifier(result.relational, subset)
            for rule_name in sorted(implied_rules):
                rule = by_name[rule_name]
                kinds = [
                    kind
                    for kind, rule_kinds in MUTATOR_KINDS.items()
                    if rule.kind in rule_kinds
                ]
                for kind in kinds:
                    rng = random.Random(
                        (SEED, kind, rule.name).__repr__()
                    )
                    candidates = MUTATORS[kind](
                        result.relational, rule, dataset, rng
                    )
                    for mutated, description in itertools.islice(
                        candidates, MAX_CANDIDATES
                    ):
                        violated = verify(mutated)
                        if rule.name not in violated:
                            continue
                        exercised += 1
                        assert violated & premise_rules, (
                            f"{schema_name}: surgical violation of "
                            f"implied rule {rule.name} "
                            f"({verdict.subject}) passed all implying "
                            f"rules — {description}; proof: "
                            f"{verdict.proof.render_inline()}"
                        )
    # The sweep must not be vacuous: the synthetic schema guarantees
    # implied rules with violating candidates to discharge.
    assert exercised > 0
