"""Phase checkpoints: resume a failed mapping session."""

import pytest

from repro.cris import figure6_schema
from repro.errors import CheckpointError
from repro.mapper import MappingOptions, SublinkPolicy, map_schema
from repro.robustness import CheckpointManager, Fault, inject


def relation_names(result):
    return {r.name for r in result.relational.relations}


class TestCheckpointResume:
    def test_all_phases_checkpointed_on_success(self):
        manager = CheckpointManager()
        result = map_schema(figure6_schema(), checkpoints=manager)
        assert manager.completed_phases == (
            "binary",
            "plan",
            "combines",
            "omissions",
            "materialize",
        )
        assert result.health.completed_phases == list(
            manager.completed_phases
        )

    @pytest.mark.parametrize(
        "phase", ["plan", "combines", "omissions", "materialize"]
    )
    def test_resume_after_phase_failure(self, phase):
        baseline = map_schema(figure6_schema())
        manager = CheckpointManager()
        with inject(Fault(f"phase:{phase}", kind="raise")):
            with pytest.raises(CheckpointError) as excinfo:
                map_schema(figure6_schema(), checkpoints=manager)
        assert excinfo.value.phase == phase
        assert phase not in manager.completed_phases
        result = map_schema(figure6_schema(), checkpoints=manager)
        assert result.health.resumed_phases == list(
            manager.completed_phases[: len(result.health.resumed_phases)]
        )
        assert relation_names(result) == relation_names(baseline)
        assert result.sql("sql2") == baseline.sql("sql2")
        assert result.map_report() == baseline.map_report()

    def test_resume_skips_rule_firing_work(self):
        manager = CheckpointManager()
        with inject(Fault("phase:materialize", kind="raise")):
            with pytest.raises(CheckpointError):
                map_schema(figure6_schema(), checkpoints=manager)
        result = map_schema(figure6_schema(), checkpoints=manager)
        # The binary phase was not re-run: no guard timings this run.
        assert result.health.guarded_steps == 0
        assert "binary" in result.health.resumed_phases

    def test_lossless_round_trip_after_resume(self):
        from repro.cris import figure6_population

        schema = figure6_schema()
        population = figure6_population(schema)
        manager = CheckpointManager()
        with inject(Fault("phase:materialize", kind="raise")):
            with pytest.raises(CheckpointError):
                map_schema(schema, checkpoints=manager)
        result = map_schema(schema, checkpoints=manager)
        canonical = result.canonicalize(result.state.to_canonical(population))
        database = result.state_map.forward(canonical)
        assert database.is_valid()
        assert result.state_map.backward(database) == canonical


class TestCheckpointSafety:
    def test_failed_phase_rolls_state_back(self):
        manager = CheckpointManager()
        with inject(Fault("phase:materialize", kind="raise")):
            with pytest.raises(CheckpointError):
                map_schema(
                    figure6_schema(),
                    MappingOptions(omit_tables=("Invited_Paper",)),
                    checkpoints=manager,
                )
        # Retrying must not double-apply the omissions recorded before
        # the failure: the pseudo-constraint appears exactly once.
        result = map_schema(
            figure6_schema(),
            MappingOptions(omit_tables=("Invited_Paper",)),
            checkpoints=manager,
        )
        omitted = [
            p
            for p in result.pseudo_constraints
            if p.name == "OMITTED$Invited_Paper"
        ]
        assert len(omitted) == 1

    def test_manager_refuses_a_different_session(self):
        manager = CheckpointManager()
        map_schema(figure6_schema(), checkpoints=manager)
        with pytest.raises(CheckpointError):
            map_schema(
                figure6_schema(),
                MappingOptions(sublink_policy=SublinkPolicy.TOGETHER),
                checkpoints=manager,
            )

    def test_clear_unbinds_the_manager(self):
        manager = CheckpointManager()
        map_schema(figure6_schema(), checkpoints=manager)
        manager.clear()
        assert manager.completed_phases == ()
        result = map_schema(
            figure6_schema(),
            MappingOptions(sublink_policy=SublinkPolicy.TOGETHER),
            checkpoints=manager,
        )
        assert result.relational.relations

    def test_invalidate_from_drops_suffix(self):
        manager = CheckpointManager()
        map_schema(figure6_schema(), checkpoints=manager)
        manager.invalidate_from("combines")
        assert manager.completed_phases == ("binary", "plan")
        manager.invalidate_from("nope")  # unknown phases are a no-op
        assert manager.completed_phases == ("binary", "plan")

    def test_completed_session_replays_from_cache(self):
        baseline = map_schema(figure6_schema())
        manager = CheckpointManager()
        map_schema(figure6_schema(), checkpoints=manager)
        replay = map_schema(figure6_schema(), checkpoints=manager)
        assert replay.health.resumed_phases == list(
            manager.completed_phases
        )
        assert replay.sql("sql2") == baseline.sql("sql2")
